package rcgo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"rcgo/internal/failpoint"
)

// Acquire/Release round trip: the owned fast path keeps its deltas on
// the token, Release flushes them exactly, and every arena counter and
// the audit agree once the token is gone.
func TestOwnerLifecycle(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	r2 := a.NewRegion()
	ext := Alloc[crossNode](r2)

	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Owned() || !r.Stats().Owned {
		t.Fatal("region not reported owned after TryAcquire")
	}
	if got := a.OwnedRegions(); got != 1 {
		t.Fatalf("OwnedRegions = %d, want 1", got)
	}
	if own.Region() != r {
		t.Fatal("token names the wrong region")
	}

	o := AllocOwned[crossNode](own)
	l := AllocOwned[listNode](own)
	l.Value.Data = 7
	// Owner-local deltas are invisible until Release: the flushed object
	// count is still zero.
	if got := r.Objects(); got != 0 {
		t.Fatalf("Objects before release = %d, want 0 (unflushed)", got)
	}
	if err := SetSameOwned(own, l, &l.Value.Next, l); err != nil {
		t.Fatal(err)
	}
	if err := SetRefOwned(own, o, &o.Value.Other, ext); err != nil {
		t.Fatal(err)
	}
	// The external target's rc unit is committed immediately — the
	// target region is shared and its delete races stay linearizable.
	if got := r2.RC(); got != 1 {
		t.Fatalf("external target rc = %d, want 1", got)
	}
	// Displacing the reference through the owned path releases it.
	if err := SetRefOwned(own, o, &o.Value.Other, nil); err != nil {
		t.Fatal(err)
	}
	if got := r2.RC(); got != 0 {
		t.Fatalf("external target rc after clear = %d, want 0", got)
	}

	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	if r.Owned() || a.OwnedRegions() != 0 {
		t.Fatal("region still owned after Release")
	}
	if own.Region() != nil {
		t.Fatal("released token still names a region")
	}
	if got := r.Objects(); got != 2 {
		t.Fatalf("Objects after release = %d, want 2", got)
	}
	c := a.Counters()
	if c.Acquires != 1 || c.Releases != 1 || c.OwnerFlushes != 1 {
		t.Fatalf("ownership counters = acquires %d releases %d flushes %d, want 1/1/1",
			c.Acquires, c.Releases, c.OwnerFlushes)
	}
	if c.Allocs != 3 { // ext + two owned
		t.Fatalf("Allocs = %d, want 3", c.Allocs)
	}
	if c.CountedStores != 2 || c.SameChecks != 1 {
		t.Fatalf("store counters = counted %d same %d, want 2/1", c.CountedStores, c.SameChecks)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit after release: %s", rep)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
}

// The pipeline pattern: build on one goroutine, hand the token through
// a channel (the memory-model edge), delete on the other. Owner.Delete
// consumes the token in one step and counts as release + delete, so
// the quiesced counters balance.
func TestOwnerPipelineHandOff(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own := r.Acquire()
	for i := 0; i < 5; i++ {
		AllocOwned[listNode](own)
	}
	ch := make(chan *Owner)
	done := make(chan error)
	go func() {
		tok := <-ch
		AllocOwned[listNode](tok)
		done <- tok.Delete()
	}()
	ch <- own
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	c := a.Counters()
	if c.Acquires != 1 || c.Releases != 1 || c.Deletes != 1 {
		t.Fatalf("counters = acquires %d releases %d deletes %d, want 1/1/1",
			c.Acquires, c.Releases, c.Deletes)
	}
	if c.Allocs != 6 {
		t.Fatalf("Allocs = %d, want 6", c.Allocs)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
	if got := a.LiveRegions(); got != 1 {
		t.Fatalf("LiveRegions = %d, want 1 (traditional)", got)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}

// Every illegal acquisition and every shared-path operation against an
// owned region fails with the documented error class.
func TestOwnerErrorPaths(t *testing.T) {
	a := NewArena()

	if _, err := a.Traditional().TryAcquire(); err == nil {
		t.Fatal("acquired the traditional region")
	}

	// Deleted and deferred regions cannot be acquired.
	dead := a.NewRegion()
	if err := dead.Delete(); err != nil {
		t.Fatal(err)
	}
	if _, err := dead.TryAcquire(); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("acquire of deleted region: %v, want ErrRegionDeleted", err)
	}
	zr := a.NewRegion()
	zo := Alloc[crossNode](zr)
	unpin, err := TryPin(zo)
	if err != nil {
		t.Fatal(err)
	}
	zr.DeleteDeferred()
	if _, err := zr.TryAcquire(); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("acquire of zombie region: %v, want ErrRegionDeleted", err)
	}
	unpin()

	r := a.NewRegion()
	obj := Alloc[crossNode](r)
	other := a.NewRegion()
	outside := Alloc[crossNode](other)
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}

	// Second acquisition and every shared mutation: ErrRegionOwned.
	if _, err := r.TryAcquire(); !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("double acquire: %v, want ErrRegionOwned", err)
	}
	if _, err := TryAlloc[crossNode](r); !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("shared alloc: %v, want ErrRegionOwned", err)
	}
	if _, err := r.TryNewSubregion(); !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("subregion of owned region: %v, want ErrRegionOwned", err)
	}
	if _, err := TryPin(obj); !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("pin into owned region: %v, want ErrRegionOwned", err)
	}
	if err := r.Delete(); !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("shared delete of owned region: %v, want ErrRegionOwned", err)
	}
	if err := SetRef(obj, &obj.Value.Other, outside); !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("shared counted store with owned holder: %v, want ErrRegionOwned", err)
	}
	if err := SetSame(obj, &obj.Value.Other, obj); !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("shared sameregion store with owned holder: %v, want ErrRegionOwned", err)
	}
	// A new inbound counted reference from outside: the target region is
	// owned, so incRC withdraws and rejects.
	if err := SetRef(outside, &outside.Value.Other, obj); !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("inbound counted store into owned region: %v, want ErrRegionOwned", err)
	}
	// DeleteDeferred is a no-op on an owned region: the owner decides.
	r.DeleteDeferred()
	if !r.Owned() {
		t.Fatal("DeleteDeferred ended ownership")
	}

	// Owned stores police their holder and their annotation.
	if err := SetRefOwned(own, outside, &outside.Value.Other, obj); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("owned store with foreign holder: %v, want ErrNotOwner", err)
	}
	if err := SetSameOwned(own, obj, &obj.Value.Other, outside); !errors.Is(err, ErrBadRef) {
		t.Fatalf("owned sameregion store of external target: %v, want ErrBadRef", err)
	}
	if err := SetTradOwned(own, obj, &obj.Value.Other, outside); !errors.Is(err, ErrBadRef) {
		t.Fatalf("owned traditional store of non-traditional target: %v, want ErrBadRef", err)
	}
	if err := SetParentOwned(own, obj, &obj.Value.Up, outside); !errors.Is(err, ErrBadRef) {
		t.Fatalf("owned parentptr store of non-ancestor: %v, want ErrBadRef", err)
	}
	trad := Alloc[crossNode](a.Traditional())
	if err := SetTradOwned(own, obj, &obj.Value.Other, trad); err != nil {
		t.Fatalf("owned traditional store: %v", err)
	}
	if err := SetTradOwned(own, obj, &obj.Value.Other, nil); err != nil {
		t.Fatalf("owned traditional clear: %v", err)
	}

	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	// A released token rejects everything.
	if err := own.Release(); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("double release: %v, want ErrNotOwner", err)
	}
	if err := own.Delete(); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("delete on released token: %v, want ErrNotOwner", err)
	}
	if _, err := TryAllocOwned[crossNode](own); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("alloc on released token: %v, want ErrNotOwner", err)
	}
	if err := SetRefOwned(own, obj, &obj.Value.Other, outside); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("counted store on released token: %v, want ErrNotOwner", err)
	}
	if err := SetSameOwned(own, obj, &obj.Value.Other, obj); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("sameregion store on released token: %v, want ErrNotOwner", err)
	}
}

// A parentptr stored through a token may target an ancestor that is
// itself owned: the link creates no reference and mutates nothing in
// the ancestor.
func TestOwnerParentStoreIntoOwnedAncestor(t *testing.T) {
	a := NewArena()
	parent := a.NewRegion()
	child := parent.NewSubregion()
	pObj := Alloc[crossNode](parent)
	cObj := Alloc[crossNode](child)

	pOwn, err := parent.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	cOwn, err := child.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := SetParentOwned(cOwn, cObj, &cObj.Value.Up, pObj); err != nil {
		t.Fatalf("parentptr into owned ancestor: %v", err)
	}
	if err := cOwn.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := pOwn.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := a.LiveRegions(); got != 1 {
		t.Fatalf("LiveRegions = %d, want 1", got)
	}
}

// Owner.Delete fails ErrRegionInUse while pre-existing references or
// subregions remain; the region stays owned, the token stays valid, and
// the early flush is not double-counted on the retry.
func TestOwnerDeleteBlocked(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	target := Alloc[crossNode](r)
	sub := r.NewSubregion()
	holderRegion := a.NewRegion()
	holder := Alloc[crossNode](holderRegion)
	MustSetRef(holder, &holder.Value.Other, target) // pre-existing inbound ref

	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	AllocOwned[crossNode](own)
	if err := own.Delete(); !errors.Is(err, ErrRegionInUse) {
		t.Fatalf("delete with live subregion: %v, want ErrRegionInUse", err)
	}
	if !r.Owned() || own.Region() != r {
		t.Fatal("failed delete ended ownership")
	}
	// The early flush already landed the owned allocation.
	if got := r.Objects(); got != 2 {
		t.Fatalf("Objects after failed delete = %d, want 2", got)
	}
	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := own.Delete(); !errors.Is(err, ErrRegionInUse) {
		t.Fatalf("delete with inbound reference: %v, want ErrRegionInUse", err)
	}
	// Releasing the pre-existing reference is legal while owned.
	MustSetRef(holder, &holder.Value.Other, nil)
	if err := own.Delete(); err != nil {
		t.Fatal(err)
	}
	c := a.Counters()
	if c.Allocs != 3 {
		t.Fatalf("Allocs = %d, want 3 (no double count across the early flush)", c.Allocs)
	}
	if err := holderRegion.Delete(); err != nil {
		t.Fatal(err)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}

// An injected rcgo/own.release failure is transient: nothing is
// flushed, the region stays owned, the token stays valid, and the retry
// succeeds with exact accounting.
func TestOwnerReleaseFailpoint(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	AllocOwned[crossNode](own)

	if err := failpoint.Enable("rcgo/own.release",
		failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	if err := own.Release(); !errors.Is(err, ErrInjected) {
		t.Fatalf("release under failpoint: %v, want ErrInjected", err)
	}
	if !r.Owned() || own.Region() != r {
		t.Fatal("injected release failure ended ownership")
	}
	if got := r.Objects(); got != 0 {
		t.Fatalf("Objects after injected failure = %d, want 0 (nothing flushed)", got)
	}
	if err := own.Delete(); !errors.Is(err, ErrInjected) {
		t.Fatalf("owned delete under failpoint: %v, want ErrInjected", err)
	}
	failpoint.DisableAll()
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	if got := r.Objects(); got != 1 {
		t.Fatalf("Objects after retried release = %d, want 1", got)
	}
	c := a.Counters()
	if c.Acquires != 1 || c.Releases != 1 || c.Allocs != 1 {
		t.Fatalf("counters = acquires %d releases %d allocs %d, want 1/1/1",
			c.Acquires, c.Releases, c.Allocs)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
}

// Ownership hand-off under the race detector: workers acquire fresh
// regions, work them through the owned fast path, pass the tokens
// around a ring of channels, and the receivers delete them — while
// every worker also probes the shared paths against its held region.
// At quiesce the accounting must be exact: arena Allocs equals the
// worker-counted successes, Acquires equals Releases, and the audit is
// clean with nothing left alive.
func TestOwnershipStress(t *testing.T) {
	const workers = 8
	iters := 300
	if testing.Short() {
		iters = 60
	}
	a := NewArena(WithMetrics())
	hub := a.NewRegion()
	hubObj := Alloc[crossNode](hub)
	var allocs atomic.Int64
	allocs.Add(1) // hubObj

	chans := make([]chan *Owner, workers)
	for i := range chans {
		chans[i] = make(chan *Owner, 2)
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := chans[(w+1)%workers]
			for i := 0; i < iters; i++ {
				r := a.NewRegion()
				own, err := r.TryAcquire()
				if err != nil {
					fail("acquire: %v", err)
					next <- nil
					continue
				}
				o := AllocOwned[crossNode](own)
				allocs.Add(1)
				if err := SetRefOwned(own, o, &o.Value.Other, hubObj); err != nil {
					fail("owned counted store: %v", err)
				}
				if i%3 == 0 {
					if _, err := r.TryAcquire(); !errors.Is(err, ErrRegionOwned) {
						fail("double acquire: %v", err)
					}
					if err := r.Delete(); !errors.Is(err, ErrRegionOwned) {
						fail("shared delete: %v", err)
					}
					if _, err := TryPin(o); !errors.Is(err, ErrRegionOwned) {
						fail("pin: %v", err)
					}
				}
				next <- own
				tok := <-chans[w]
				if tok == nil {
					continue
				}
				if _, err := TryAllocOwned[crossNode](tok); err != nil {
					fail("owned alloc after hand-off: %v", err)
				} else {
					allocs.Add(1)
				}
				if err := tok.Delete(); err != nil {
					fail("owned delete: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	if err := hub.Delete(); err != nil {
		t.Fatal(err)
	}
	c := a.Counters()
	if c.Allocs != allocs.Load() {
		t.Fatalf("alloc drift: arena counted %d, workers observed %d", c.Allocs, allocs.Load())
	}
	if c.Acquires == 0 || c.Acquires != c.Releases {
		t.Fatalf("ownership imbalance: acquires %d releases %d", c.Acquires, c.Releases)
	}
	if got := a.OwnedRegions(); got != 0 {
		t.Fatalf("OwnedRegions = %d, want 0", got)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
	if got := a.LiveRegions(); got != 1 {
		t.Fatalf("LiveRegions = %d, want 1 (traditional)", got)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}

// Readers are legal against an owned region: concurrent Stats, Audit,
// Objects and hierarchy walks race the owner's plain-field fast path
// without tripping the race detector, because the owner's unflushed
// state lives on the token and the shared words they read stay atomic.
func TestOwnedConcurrentReaders(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Stats()
					_ = r.Objects()
					_ = a.Audit()
					_ = a.OwnedRegions()
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		o := AllocOwned[listNode](own)
		if err := SetSameOwned(own, o, &o.Value.Next, o); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := own.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
}
