package rcgo

import (
	"errors"
	"sync"
	"testing"
)

type fabricNode struct {
	Same Ref[fabricNode]
	Next Ref[fabricNode]
}

func TestWithShardsClamping(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {200, 256}, {5000, 256}, {-3, 1},
	} {
		a := NewArena(WithShards(tc.in))
		if got := a.Shards(); got != tc.want {
			t.Errorf("WithShards(%d): Shards() = %d, want %d", tc.in, got, tc.want)
		}
		if got := a.Stats().Shards; got != tc.want {
			t.Errorf("WithShards(%d): Stats().Shards = %d, want %d", tc.in, got, tc.want)
		}
	}
	// The default width is GOMAXPROCS-derived: a power of two, at least 1.
	a := NewArena()
	n := a.Shards()
	if n < 1 || n&(n-1) != 0 {
		t.Fatalf("default Shards() = %d, want a power of two >= 1", n)
	}
}

// Region ids are globally unique and stable, and their low bits decode
// to the shard the region was assigned to.
func TestShardEncodedIDs(t *testing.T) {
	a := NewArena(WithShards(8))
	seen := map[int64]bool{a.Traditional().ID(): true}
	regions := make([]*Region, 0, 512)
	for i := 0; i < 512; i++ {
		r := a.NewRegion()
		if seen[r.ID()] {
			t.Fatalf("duplicate region id %d", r.ID())
		}
		seen[r.ID()] = true
		if sh := a.RegionShard(r.ID()); sh < 0 || sh >= a.Shards() {
			t.Fatalf("RegionShard(%d) = %d, outside [0,%d)", r.ID(), sh, a.Shards())
		}
		regions = append(regions, r)
	}
	for _, r := range regions {
		id := r.ID()
		if err := r.Delete(); err != nil {
			t.Fatal(err)
		}
		if r.ID() != id {
			t.Fatalf("region id changed across delete: %d -> %d", id, r.ID())
		}
	}
	// RegionsCreated sums the per-shard sequences and stays exact.
	if got, want := a.Stats().RegionsCreated, int64(1+512); got != want {
		t.Fatalf("RegionsCreated = %d, want %d", got, want)
	}
}

// EachRegion visits regions grouped by fabric shard in ascending
// shard-index order.
func TestEachRegionShardOrdering(t *testing.T) {
	a := NewArena(WithShards(8))
	for i := 0; i < 256; i++ {
		a.NewRegion()
	}
	last, count := -1, 0
	populated := map[int]bool{}
	a.EachRegion(func(r *Region) {
		sh := a.RegionShard(r.ID())
		if sh < last {
			t.Fatalf("EachRegion visited shard %d after shard %d", sh, last)
		}
		last = sh
		populated[sh] = true
		count++
	})
	if count != 257 { // 256 + traditional
		t.Fatalf("EachRegion visited %d regions, want 257", count)
	}
	if len(populated) < 2 {
		t.Fatalf("257 regions hashed to %d shard(s); assignment is broken", len(populated))
	}
}

// The deprecated knob setters still work and agree with their option
// equivalents.
func TestDeprecatedSettersStillWork(t *testing.T) {
	// EnableMetrics after construction == WithMetrics for post-enable deltas.
	a := NewArena()
	if a.MetricsEnabled() {
		t.Fatal("metrics enabled before EnableMetrics")
	}
	a.EnableMetrics()
	if !a.MetricsEnabled() {
		t.Fatal("EnableMetrics did not enable metrics")
	}
	r := a.NewRegion()
	Alloc[fabricNode](r)
	if got := a.Counters().Allocs; got != 1 {
		t.Fatalf("Counters().Allocs = %d after EnableMetrics+Alloc, want 1", got)
	}

	// SetAllocCache(false) routes new regions down the slow path; both
	// paths keep counters exact.
	b := NewArena()
	b.SetAllocCache(false)
	s := b.NewRegion()
	if !s.allocSlow {
		t.Fatal("SetAllocCache(false) did not mark new regions slow-path")
	}
	Alloc[fabricNode](s)
	if got := b.LiveObjects(); got != 1 {
		t.Fatalf("LiveObjects = %d on slow path, want 1", got)
	}

	// SetTracer still installs a tracer mid-life.
	ring := NewRingTracer(64)
	b.SetTracer(ring)
	b.NewRegion()
	if ring.Total() == 0 {
		t.Fatal("SetTracer-installed tracer saw no events")
	}
}

// Options configure the arena from birth: WithMetrics counts the whole
// life, WithTracer sees the traditional region's creation, and
// WithAllocCache(false) is SetAllocCache before any region exists.
func TestArenaOptions(t *testing.T) {
	ring := NewRingTracer(64)
	a := NewArena(WithMetrics(), WithTracer(ring), WithAllocCache(false))
	if !a.MetricsEnabled() {
		t.Fatal("WithMetrics did not enable metrics")
	}
	evs := ring.Events()
	if len(evs) == 0 || evs[0].Kind != TraceRegionCreated || evs[0].Region != a.Traditional().ID() {
		t.Fatalf("first traced event = %+v, want the traditional region's creation", evs)
	}
	r := a.NewRegion()
	if !r.allocSlow {
		t.Fatal("WithAllocCache(false) did not mark new regions slow-path")
	}
	Alloc[fabricNode](r)
	if got := a.Counters().Allocs; got != 1 {
		t.Fatalf("Counters().Allocs = %d, want 1", got)
	}
	// nil options are ignored.
	if NewArena(nil, WithShards(2)).Shards() != 2 {
		t.Fatal("nil option broke option application")
	}
}

// A parent on one shard with a child on another must keep the
// parent/child rules exact: delete ordering, the children counter, the
// zombie cascade, and both shards' population totals.
func TestCrossShardSubregions(t *testing.T) {
	a := NewArena(WithShards(8))
	parent := a.NewRegion()

	// Create subregions until one lands on a foreign shard.
	var child *Region
	for i := 0; i < 4096 && child == nil; i++ {
		c := parent.NewSubregion()
		if a.RegionShard(c.ID()) != a.RegionShard(parent.ID()) {
			child = c
			break
		}
		if err := c.Delete(); err != nil {
			t.Fatal(err)
		}
	}
	if child == nil {
		t.Fatal("4096 subregions all hashed to the parent's shard")
	}

	// Children-first delete ordering holds across shards.
	if err := parent.Delete(); !errors.Is(err, ErrRegionInUse) {
		t.Fatalf("Delete(parent) with cross-shard child = %v, want ErrRegionInUse", err)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit with cross-shard child:\n%s", rep)
	}

	// Zombie cascade across shards: the parent defers, the child's
	// reclaim (on another shard) drains it.
	Alloc[fabricNode](parent)
	Alloc[fabricNode](child)
	parent.DeleteDeferred()
	if !parent.Deferred() {
		t.Fatal("parent with live child did not become a zombie")
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit with cross-shard zombie parent:\n%s", rep)
	}
	if err := child.Delete(); err != nil {
		t.Fatal(err)
	}
	if st := parent.Stats(); !st.Reclaimed {
		t.Fatalf("cross-shard child reclaim did not cascade: parent = %+v", st)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit after cross-shard cascade:\n%s", rep)
	}
	if got, want := a.LiveRegions(), int64(1); got != want { // traditional only
		t.Fatalf("LiveRegions = %d, want %d", got, want)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
}

// The fabric stress test (ISSUE 6): hundreds of concurrent regions
// spread across shards, alloc + SetSame + delete churn from many
// goroutines, then a quiesced fabric-wide audit that must be clean and
// a Counters().Allocs that must be exact.
func TestFabricStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 40
		batch   = 8 // regions per worker per round, concurrently live
		objs    = 5 // objects per region
	)
	a := NewArena(WithShards(8), WithMetrics())

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				regions := make([]*Region, batch)
				for i := range regions {
					regions[i] = a.NewRegion()
				}
				for _, r := range regions {
					var prev *Obj[fabricNode]
					for j := 0; j < objs; j++ {
						o := Alloc[fabricNode](r)
						MustSetSame(o, &o.Value.Same, o)
						if prev != nil {
							MustSetSame(prev, &prev.Value.Next, o)
						}
						prev = o
					}
				}
				// Half die immediately, half go through the zombie path
				// pinned, so both delete flavours churn cross-shard.
				for i, r := range regions {
					if i%2 == 0 {
						if err := r.Delete(); err != nil {
							t.Errorf("Delete: %v", err)
						}
						continue
					}
					unpin := Pin(Alloc[fabricNode](r))
					r.DeleteDeferred()
					unpin()
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced: the fabric-wide audit is ground truth and every counter
	// is exact.
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("fabric audit after stress:\n%s", rep)
	}
	st := a.Stats()
	if got, want := st.RegionsCreated, int64(1+workers*rounds*batch); got != want {
		t.Fatalf("RegionsCreated = %d, want %d", got, want)
	}
	if st.LiveRegions != 1 || st.DeferredRegions != 0 {
		t.Fatalf("after stress: LiveRegions=%d DeferredRegions=%d, want 1/0", st.LiveRegions, st.DeferredRegions)
	}
	if st.LiveObjects != 0 {
		t.Fatalf("LiveObjects = %d, want 0", st.LiveObjects)
	}
	// objs per region, plus the pin-holder object on every deferred one.
	want := int64(workers*rounds*batch*objs + workers*rounds*(batch/2))
	if got := a.Counters().Allocs; got != want {
		t.Fatalf("Counters().Allocs = %d, want %d", got, want)
	}
}
