# rcgo — reproduction of Gay & Aiken, "Language Support for Regions" (PLDI 2001)

GO ?= go

.PHONY: all build test test-short vet race check bench experiments examples fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass: the concurrent Go-native runtime stress tests
# (region_concurrent_test.go) are only meaningful under -race. -short
# keeps the VM differential suites at a size where the ~10-20x race
# overhead stays reasonable.
race:
	$(GO) test -race -short ./...

# The default verification gate: build cleanliness, the full test suite,
# and the race pass over the concurrent API.
check: vet test race

# One testing.B benchmark per paper table/figure, plus ablations and
# primitive microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run rcgo/cmd/rcbench -reps 3 -bars

examples:
	$(GO) run rcgo/examples/quickstart
	$(GO) run rcgo/examples/cycles
	$(GO) run rcgo/examples/webserver
	$(GO) run rcgo/examples/arenacompiler
	$(GO) run rcgo/examples/interp

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/rcc/

clean:
	$(GO) clean ./...
