# rcgo — reproduction of Gay & Aiken, "Language Support for Regions" (PLDI 2001)

GO ?= go

.PHONY: all build test test-short vet staticcheck race check bench bench-smoke experiments examples fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet, when the tool is available. The gate must
# work in hermetic containers that cannot install tools, so a missing
# staticcheck binary is a skip, not a failure; findings fail the build
# when it is present.
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)
staticcheck:
ifdef STATICCHECK
	$(STATICCHECK) ./...
else
	@echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
endif

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass: the concurrent Go-native runtime stress tests
# (region_concurrent_test.go) are only meaningful under -race. -short
# keeps the VM differential suites at a size where the ~10-20x race
# overhead stays reasonable.
race:
	$(GO) test -race -short ./...

# The default verification gate: build cleanliness, static analysis,
# the full test suite, and the race pass over the concurrent API.
check: vet staticcheck test race

# One testing.B benchmark per paper table/figure, plus ablations and
# primitive microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Tiny end-to-end sanity pass over the machine-readable benchmark path:
# a reduced-scale rcbench -json run piped through the benchlint
# validator. Catches schema drift and broken workloads in seconds.
bench-smoke:
	$(GO) run rcgo/cmd/rcbench -json -reps 1 -scale 2 -workloads moss,tile | $(GO) run rcgo/cmd/benchlint

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run rcgo/cmd/rcbench -reps 3 -bars

examples:
	$(GO) run rcgo/examples/quickstart
	$(GO) run rcgo/examples/cycles
	$(GO) run rcgo/examples/webserver
	$(GO) run rcgo/examples/arenacompiler
	$(GO) run rcgo/examples/interp

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/rcc/

clean:
	$(GO) clean ./...
