# rcgo — reproduction of Gay & Aiken, "Language Support for Regions" (PLDI 2001)

GO ?= go

.PHONY: all build test test-short vet bench experiments examples fuzz clean

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per paper table/figure, plus ablations and
# primitive microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run rcgo/cmd/rcbench -reps 3 -bars

examples:
	$(GO) run rcgo/examples/quickstart
	$(GO) run rcgo/examples/cycles
	$(GO) run rcgo/examples/webserver
	$(GO) run rcgo/examples/arenacompiler
	$(GO) run rcgo/examples/interp

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/rcc/

clean:
	$(GO) clean ./...
