# rcgo — reproduction of Gay & Aiken, "Language Support for Regions" (PLDI 2001)

GO ?= go

.PHONY: all build test test-short test-shuffle vet staticcheck race check benchlint-files advise-smoke own-smoke contend-smoke slab-smoke docs-check chaos chaos-smoke bench bench-smoke experiments examples fuzz fuzz-delete clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet, when the tool is available. The gate must
# work in hermetic containers that cannot install tools, so a missing
# staticcheck binary is a skip, not a failure; findings fail the build
# when it is present.
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)
staticcheck:
ifdef STATICCHECK
	$(STATICCHECK) ./...
else
	@echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
endif

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Shuffled test order: catches tests that only pass because an earlier
# test left global state (failpoints, expvar, metrics) the way they
# expect. -short keeps the pass cheap enough to run inside check.
test-shuffle:
	$(GO) test -shuffle=on -short ./...

# Race-detector pass: the concurrent Go-native runtime stress tests
# (region_concurrent_test.go) are only meaningful under -race. -short
# keeps the VM differential suites at a size where the ~10-20x race
# overhead stays reasonable.
race:
	$(GO) test -race -short ./...

# The default verification gate: build cleanliness, static analysis,
# the full test suite, the race pass over the concurrent API, the
# checked-in benchmark reports revalidated against the current schema,
# and the documentation anchored to the tree it describes.
check: vet staticcheck test test-shuffle race benchlint-files advise-smoke own-smoke contend-smoke slab-smoke docs-check

# Every committed rcbench report must still satisfy the benchlint
# invariants — catches schema drift against historical BENCH_*.json.
benchlint-files:
	@for f in BENCH_*.json; do \
		[ -e "$$f" ] || { echo "benchlint-files: no BENCH_*.json files"; break; }; \
		echo "benchlint < $$f"; \
		$(GO) run rcgo/cmd/benchlint < $$f || exit 1; \
	done

# Annotation-advisor end-to-end gate: replay a reduced grobner-mix
# workload with the advisor armed and print the upgrade table. rcbench
# -advise exits non-zero when the profile reports zero upgrade
# candidates — the replay plants deliberately under-annotated stores, so
# an empty report means the advisor lost the flavour lattice.
advise-smoke:
	$(GO) run rcgo/cmd/rcbench -advise -advise-allocs 2000

# Ownership fast-path end-to-end gate: a 1-round -own-ab report piped
# through benchlint (exercises Acquire/Release, the owned alloc and
# store paths, and the "ownership" schema section), then the pipeline
# hand-off example. One round proves the machinery, not the speedup —
# BENCH_pr8_ownership.json records the real best-of-10 run.
own-smoke:
	$(GO) run rcgo/cmd/rcbench -json -reps 1 -scale 2 -workloads moss -own-ab 1 -own-cpu 2 | $(GO) run rcgo/cmd/benchlint
	$(GO) run rcgo/examples/pipeline

# Blocking-acquisition end-to-end gate: a 1-round -contend-ab report
# (exercises AcquireContext, the FIFO hand-off and the "contention"
# schema section) piped through benchlint, then the contention chaos
# phase alone under the race detector with the own.handoff failpoint
# armed. One round proves the machinery — BENCH_pr9_contention.json
# records the real best-of-10 run.
contend-smoke:
	$(GO) run rcgo/cmd/rcbench -json -reps 1 -scale 2 -workloads moss -contend-ab 1 -contend-cpu 2 | $(GO) run rcgo/cmd/benchlint
	$(GO) run -race rcgo/cmd/rcchaos -phase contention -seed 1 -workers 4 -conc-ops 300 -q

# Off-heap slab end-to-end gate: a 1-round -slab-ab report (exercises
# WithOffHeapSlabs, the pointer-free admission gate, reclaim-time page
# return, the GC-pressure cell and the "slab" schema section) piped
# through benchlint, then the slab chaos phase alone under the race
# detector with the slab.map failpoint armed — the phase fails on any
# leaked page. One round proves the machinery — BENCH_pr10_slab.json
# records the real best-of run.
slab-smoke:
	$(GO) run rcgo/cmd/rcbench -json -reps 1 -scale 2 -workloads moss -slab-ab 1 -slab-cpu 2 | $(GO) run rcgo/cmd/benchlint
	$(GO) run -race rcgo/cmd/rcchaos -phase slab -seed 1 -workers 4 -conc-ops 300 -q

# Documentation anchor gate: every path named in ARCHITECTURE.md's
# tables must exist on disk, and every "DESIGN.md §N" cross-reference
# in *.go and *.md must resolve to a real numbered section.
docs-check:
	$(GO) run rcgo/cmd/docscheck

# Chaos harness under the race detector: a seeded sequential phase
# checked op-by-op against the reference model of the delete state
# machine, then concurrent scheduler-perturbation and error-injection
# phases with failpoints armed, a zombie watchdog patrolling, and
# Arena.Audit required clean at every quiesce point. Override the knobs:
#
#	make chaos CHAOS_SEED=7 CHAOS_SEQ_OPS=50000 CHAOS_WORKERS=16 CHAOS_CONC_OPS=5000
CHAOS_SEED     ?= 1
CHAOS_SEQ_OPS  ?= 20000
CHAOS_WORKERS  ?= 8
CHAOS_CONC_OPS ?= 3000
chaos:
	$(GO) run -race rcgo/cmd/rcchaos -seed $(CHAOS_SEED) -seq-ops $(CHAOS_SEQ_OPS) \
		-workers $(CHAOS_WORKERS) -conc-ops $(CHAOS_CONC_OPS)

# Short-budget chaos pass for CI: same gates, reduced scale.
chaos-smoke:
	$(GO) run -race rcgo/cmd/rcchaos -seed 1 -seq-ops 4000 -workers 4 -conc-ops 300 -q

# One testing.B benchmark per paper table/figure, plus ablations and
# primitive microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Tiny end-to-end sanity pass over the machine-readable benchmark path:
# a reduced-scale rcbench -json run — including 1-rep allocation
# fast-path and arena-fabric A/Bs so the parallel and fabric sections
# of the schema are exercised — piped through the benchlint validator,
# then a 100-iteration spin of the parallel Alloc benchmark pairs.
# Catches schema drift, broken workloads and a broken fast path in
# seconds.
bench-smoke:
	$(GO) run rcgo/cmd/rcbench -json -reps 1 -scale 2 -workloads moss,tile -alloc-ab 1 -ab-cpu 2 -fabric-ab 1 -fabric-cpu 2 -fabric-live 32 | $(GO) run rcgo/cmd/benchlint
	$(GO) test -run '^$$' -bench 'BenchmarkParallelAlloc' -benchtime 100x -cpu 2 .

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run rcgo/cmd/rcbench -reps 3 -bars

examples:
	$(GO) run rcgo/examples/quickstart
	$(GO) run rcgo/examples/cycles
	$(GO) run rcgo/examples/webserver
	$(GO) run rcgo/examples/arenacompiler
	$(GO) run rcgo/examples/interp
	$(GO) run rcgo/examples/pipeline

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/rcc/

# Fuzz the delete state machine against the sequential reference model.
# Minimization is bounded because nearly every early input grows
# coverage in this stateful target; the default 60s-per-input budget
# makes the fuzzer appear hung.
fuzz-delete:
	$(GO) test -fuzz FuzzDeleteStateMachine -fuzztime 30s -fuzzminimizetime 20x -run '^$$' .

clean:
	$(GO) clean ./...
