package rcgo

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// advTestNode carries one slot per flavour plus a second counted slot,
// so one holder can exercise distinct call sites without mixing them.
type advTestNode struct {
	same   Ref[advTestNode]
	up     Ref[advTestNode]
	cross  Ref[advTestNode]
	cross2 Ref[advTestNode]
}

func findSite(t *testing.T, rep AdvisorReport, used, rec StoreFlavour) *AdvisorSite {
	t.Helper()
	var found *AdvisorSite
	for i := range rep.Sites {
		s := &rep.Sites[i]
		if s.Used == used && s.Recommended == rec {
			if found != nil {
				t.Fatalf("two sites with used=%v recommended=%v:\n%s", used, rec, rep)
			}
			found = s
		}
	}
	if found == nil {
		t.Fatalf("no site with used=%v recommended=%v:\n%s", used, rec, rep)
	}
	return found
}

// TestAdvisorLattice drives every classification of the flavour lattice
// through distinct call sites and checks the report recommends the
// cheapest legal flavour at each, with exact counts and the
// wasted-rc-updates tally on the counted upgrades only.
func TestAdvisorLattice(t *testing.T) {
	a := NewArena(WithAdvisor())
	if !a.AdvisorEnabled() {
		t.Fatal("WithAdvisor did not arm the advisor")
	}
	parent := a.NewRegion()
	sub := parent.NewSubregion()
	other := a.NewRegion()

	h := Alloc[advTestNode](sub)
	self := Alloc[advTestNode](sub)
	upObj := Alloc[advTestNode](parent)
	tradObj := Alloc[advTestNode](a.Traditional())
	otherObj := Alloc[advTestNode](other)

	const n = 5
	for i := 0; i < n; i++ {
		MustSetRef(h, &h.Value.cross, self) // same-region via SetRef: free upgrade
	}
	for i := 0; i < n; i++ {
		MustSetRef(h, &h.Value.cross2, tradObj) // traditional via SetRef: counted upgrade
	}
	for i := 0; i < n; i++ {
		MustSetRef(h, &h.Value.up, upObj) // ancestor via SetRef: counted upgrade
	}
	for i := 0; i < n; i++ {
		MustSetRef(h, &h.Value.cross, otherObj) // unrelated region: SetRef is right
	}
	for i := 0; i < n; i++ {
		MustSetSame(h, &h.Value.same, self) // already the cheapest
	}
	// Nil stores are never profiled.
	MustSetRef(h, &h.Value.cross, nil)
	MustSetSame(h, &h.Value.same, nil)

	rep := a.AdvisorReport()
	if !rep.Enabled {
		t.Fatal("report not enabled")
	}
	if rep.Observations != 5*n {
		t.Fatalf("Observations = %d, want %d\n%s", rep.Observations, 5*n, rep)
	}
	if len(rep.Sites) != 5 {
		t.Fatalf("got %d sites, want 5:\n%s", len(rep.Sites), rep)
	}
	if rep.UpgradeCandidates != 3 {
		t.Fatalf("UpgradeCandidates = %d, want 3:\n%s", rep.UpgradeCandidates, rep)
	}

	sameUp := findSite(t, rep, FlavourRef, FlavourSame)
	if !sameUp.Upgrade || sameUp.Count != n || sameUp.WastedRCUpdates != 0 {
		t.Errorf("same-region upgrade site wrong: %+v", *sameUp)
	}
	tradUp := findSite(t, rep, FlavourRef, FlavourTrad)
	if !tradUp.Upgrade || tradUp.Count != n || tradUp.WastedRCUpdates != 2*n {
		t.Errorf("traditional upgrade site wrong: %+v", *tradUp)
	}
	parentUp := findSite(t, rep, FlavourRef, FlavourParent)
	if !parentUp.Upgrade || parentUp.Count != n || parentUp.WastedRCUpdates != 2*n {
		t.Errorf("parentptr upgrade site wrong: %+v", *parentUp)
	}
	keepRef := findSite(t, rep, FlavourRef, FlavourRef)
	if keepRef.Upgrade || keepRef.Count != n {
		t.Errorf("keep-SetRef site wrong: %+v", *keepRef)
	}
	keepSame := findSite(t, rep, FlavourSame, FlavourSame)
	if keepSame.Upgrade || keepSame.Count != n || keepSame.LegalSame != n {
		t.Errorf("keep-SetSame site wrong: %+v", *keepSame)
	}
	if rep.WastedRCUpdates != 4*n {
		t.Errorf("report WastedRCUpdates = %d, want %d", rep.WastedRCUpdates, 4*n)
	}

	// Every site resolves into this test file, never into a MustSet*
	// wrapper frame.
	for _, s := range rep.Sites {
		if !strings.Contains(s.File, "region_advisor_test.go") || s.Line == 0 {
			t.Errorf("site not attributed to the caller: %+v", s)
		}
		if strings.Contains(s.Func, "MustSet") {
			t.Errorf("site attributed to a wrapper: %+v", s)
		}
	}

	// The report round-trips through JSON, flavour names included.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back AdvisorReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Sites) != len(rep.Sites) || back.Sites[0].Used != rep.Sites[0].Used {
		t.Errorf("JSON round-trip changed the report")
	}
}

// TestAdvisorMixedSite: a call site whose stores are only sometimes
// same-region must NOT be recommended SetSame — an upgraded store
// would fail ErrBadRef on the cross-region case. The recommendation is
// the lattice meet over every observation.
func TestAdvisorMixedSite(t *testing.T) {
	a := NewArena(WithAdvisor())
	r := a.NewRegion()
	other := a.NewRegion()
	h := Alloc[advTestNode](r)
	targets := []*Obj[advTestNode]{Alloc[advTestNode](r), Alloc[advTestNode](other)}
	for i := 0; i < 10; i++ {
		MustSetRef(h, &h.Value.cross, targets[i%2])
	}
	rep := a.AdvisorReport()
	if len(rep.Sites) != 1 {
		t.Fatalf("got %d sites, want 1:\n%s", len(rep.Sites), rep)
	}
	s := rep.Sites[0]
	if s.Upgrade || s.Recommended != FlavourRef {
		t.Errorf("mixed site must keep SetRef: %+v", s)
	}
	if s.Count != 10 || s.LegalSame != 5 {
		t.Errorf("mixed site counts wrong: %+v", s)
	}
}

// TestAdvisorEnableMidLife: stores before arming are unobserved, the
// mid-life gate walks existing regions, and arming is idempotent.
func TestAdvisorEnableMidLife(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	h := Alloc[advTestNode](r)
	v := Alloc[advTestNode](r)
	MustSetSame(h, &h.Value.same, v)
	if a.AdvisorEnabled() {
		t.Fatal("advisor armed without opting in")
	}
	if rep := a.AdvisorReport(); rep.Enabled || len(rep.Sites) != 0 {
		t.Fatalf("disarmed report not empty: %+v", rep)
	}
	a.EnableAdvisor()
	a.EnableAdvisor() // idempotent
	if !a.AdvisorEnabled() {
		t.Fatal("EnableAdvisor did not arm")
	}
	MustSetSame(h, &h.Value.same, v)
	rep := a.AdvisorReport()
	if rep.Observations != 1 || len(rep.Sites) != 1 {
		t.Fatalf("mid-life profile wrong (pre-arming store leaked in?):\n%s", rep)
	}
}

// TestAdvisorDisabledTable: the human table names the arming knobs when
// the advisor is off, instead of rendering an empty report.
func TestAdvisorDisabledTable(t *testing.T) {
	a := NewArena()
	table := a.AdvisorReport().String()
	if !strings.Contains(table, "advisor disabled") || !strings.Contains(table, "WithAdvisor") {
		t.Errorf("disabled table missing the arming hint:\n%s", table)
	}
}

// TestAdvisorTraceOncePerSite: the first downgrade-worthy store at a
// site emits one TraceStoreUpgradeable event; repeats stay silent.
func TestAdvisorTraceOncePerSite(t *testing.T) {
	ring := NewRingTracer(256)
	a := NewArena(WithAdvisor(), WithTracer(ring))
	r := a.NewRegion()
	h := Alloc[advTestNode](r)
	v := Alloc[advTestNode](r)
	for i := 0; i < 50; i++ {
		MustSetRef(h, &h.Value.cross, v) // upgradeable every time
		MustSetSame(h, &h.Value.same, v) // never upgradeable
	}
	events := 0
	for _, ev := range ring.Events() {
		if ev.Kind == TraceStoreUpgradeable {
			events++
			if ev.Region != r.ID() {
				t.Errorf("event names region %d, want holder %d", ev.Region, r.ID())
			}
		}
	}
	if events != 1 {
		t.Errorf("TraceStoreUpgradeable fired %d times, want 1", events)
	}
}

// TestAdvisorExactUnderStress holds the advisor to the counters'
// exact-at-quiesce contract on a multi-shard fabric: concurrent workers
// hammer four distinct call sites, each worker tallies its own
// successes, and the quiesced table must match both per flavour and per
// site. Run under -race this doubles as the table's race exerciser.
func TestAdvisorExactUnderStress(t *testing.T) {
	ring := NewRingTracer(1 << 12)
	a := NewArena(WithShards(8), WithAdvisor(), WithTracer(ring))
	parent := a.NewRegion()
	sub := parent.NewSubregion()
	upObj := Alloc[advTestNode](parent)
	shared := a.NewRegion()
	sharedObj := Alloc[advTestNode](shared)

	const workers = 8
	ops := 2000
	if testing.Short() {
		ops = 200
	}
	var sameN, parentN, refN, upRefN atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := Alloc[advTestNode](sub)
			self := Alloc[advTestNode](sub)
			for i := 0; i < ops; i++ {
				MustSetSame(h, &h.Value.same, self)
				sameN.Add(1)
				MustSetParent(h, &h.Value.up, upObj)
				parentN.Add(1)
				MustSetRef(h, &h.Value.cross, sharedObj) // unrelated region: keep
				refN.Add(1)
				MustSetRef(h, &h.Value.cross2, upObj) // ancestor: counted upgrade
				upRefN.Add(1)
			}
			// Clear the counted slots so teardown stays clean; nil stores
			// are not profiled.
			MustSetRef(h, &h.Value.cross, nil)
			MustSetRef(h, &h.Value.cross2, nil)
		}()
	}
	wg.Wait()

	rep := a.AdvisorReport()
	var got [flavourCount]int64
	for _, s := range rep.Sites {
		got[s.Used] += s.Count
	}
	if got[FlavourSame] != sameN.Load() || got[FlavourParent] != parentN.Load() ||
		got[FlavourRef] != refN.Load()+upRefN.Load() {
		t.Fatalf("advisor drift at quiesce: got same=%d parent=%d ref=%d, want same=%d parent=%d ref=%d\n%s",
			got[FlavourSame], got[FlavourParent], got[FlavourRef],
			sameN.Load(), parentN.Load(), refN.Load()+upRefN.Load(), rep)
	}
	if len(rep.Sites) != 4 {
		t.Fatalf("got %d sites, want 4 (one per source line):\n%s", len(rep.Sites), rep)
	}
	up := findSite(t, rep, FlavourRef, FlavourParent)
	if !up.Upgrade || up.Count != upRefN.Load() || up.WastedRCUpdates != 2*upRefN.Load() {
		t.Errorf("counted-upgrade site wrong under stress: %+v", *up)
	}
	keep := findSite(t, rep, FlavourRef, FlavourRef)
	if keep.Upgrade || keep.Count != refN.Load() {
		t.Errorf("keep site wrong under stress: %+v", *keep)
	}

	// Exactly one trace event despite every worker racing the first
	// upgradeable store.
	events := 0
	for _, ev := range ring.Events() {
		if ev.Kind == TraceStoreUpgradeable {
			events++
		}
	}
	if events != 1 {
		t.Errorf("TraceStoreUpgradeable fired %d times under race, want 1", events)
	}

	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Delete(); err != nil {
		t.Fatal(err)
	}
}

// TestAdvisorDisarmedOverhead is the cost-contract regression mirror of
// the metrics gate bound: a disarmed advisor must stay a pointer load
// and branch on the store path. If the gate ever grew a stack walk, the
// disarmed side would land near the armed side's cost instead of near
// the metrics-only cost, and the generous factor here would trip.
// Single-run wall-clock comparisons are noisy, so each side is the best
// of five testing.Benchmark runs; skipped in -short.
func TestAdvisorDisarmedOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	measure := func(opts ...Option) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			res := testing.Benchmark(func(b *testing.B) {
				a := NewArena(opts...)
				r := a.NewRegion()
				h := Alloc[advTestNode](r)
				v := Alloc[advTestNode](r)
				b.ResetTimer()
				for j := 0; j < b.N; j++ {
					MustSetSame(h, &h.Value.same, v)
				}
			})
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	disarmed := measure()
	metrics := measure(WithMetrics())
	armed := measure(WithAdvisor())
	t.Logf("SetSame ns/op: disarmed=%.2f metrics=%.2f advisor-armed=%.2f", disarmed, metrics, armed)
	// The armed side pays runtime.Callers; the disarmed side must stay
	// within a generous factor of the metrics-enabled store (one atomic
	// add), nowhere near the armed cost.
	if disarmed > metrics*3 {
		t.Errorf("disarmed advisor store %.2f ns/op vs metrics-enabled %.2f ns/op: the disarmed gate is no longer a single load+branch",
			disarmed, metrics)
	}
	if armed < disarmed {
		t.Logf("armed (%.2f) measured under disarmed (%.2f): timing noise, tolerated", armed, disarmed)
	}
}
