package rcgo

import (
	"errors"
	"sync"
	"testing"
)

// Exact-accounting tests for the cumulative counters and the tracer,
// in the style of region_concurrent_test.go: N goroutines perform a
// known number of operations each, and the totals must match exactly —
// no lost and no double-counted events. All of these are meaningful
// under -race (make race).

type traceNode struct {
	same  Ref[traceNode] // sameregion slot
	trad  Ref[traceNode] // traditional slot
	up    Ref[traceNode] // parentptr slot
	cross Ref[traceNode] // counted slot
}

// Every store flavour, check failure, pin and alloc from 8 goroutines;
// the counter deltas must equal the op counts exactly.
func TestCountersExactUnderConcurrency(t *testing.T) {
	const workers = 8
	const iters = 400
	a := NewArena()
	a.EnableMetrics()

	shared := a.NewRegion()
	tobj := Alloc[traceNode](shared)
	tradObj := Alloc[traceNode](a.Traditional())
	foreign := Alloc[traceNode](a.NewRegion())

	type worker struct {
		hr *Region
		h  *Obj[traceNode]
		s  *Obj[traceNode] // lives in a subregion of hr
	}
	ws := make([]worker, workers)
	for i := range ws {
		hr := a.NewRegion()
		ws[i] = worker{hr: hr, h: Alloc[traceNode](hr), s: Alloc[traceNode](hr.NewSubregion())}
	}

	c0 := a.Counters()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				MustSetSame(w.h, &w.h.Value.same, w.h)
				if err := SetSame(w.h, &w.h.Value.same, foreign); !errors.Is(err, ErrBadRef) {
					t.Errorf("cross-region SetSame: %v", err)
				}
				MustSetTrad(w.h, &w.h.Value.trad, tradObj)
				MustSetParent(w.s, &w.s.Value.up, w.h)
				MustSetRef(w.h, &w.h.Value.cross, tobj)
				MustSetRef(w.h, &w.h.Value.cross, nil)
				Pin(tobj)()
				Alloc[traceNode](w.hr)
			}
		}(ws[i])
	}
	wg.Wait()

	d := a.Counters()
	total := int64(workers * iters)
	for _, chk := range []struct {
		name      string
		got, want int64
	}{
		{"SameChecks", d.SameChecks - c0.SameChecks, 2 * total},
		{"CheckFailures", d.CheckFailures - c0.CheckFailures, total},
		{"TradChecks", d.TradChecks - c0.TradChecks, total},
		{"ParentChecks", d.ParentChecks - c0.ParentChecks, total},
		{"CountedStores", d.CountedStores - c0.CountedStores, 2 * total},
		{"RCIncrements", d.RCIncrements - c0.RCIncrements, 2 * total},
		{"RCDecrements", d.RCDecrements - c0.RCDecrements, 2 * total},
		{"PinOps", d.PinOps - c0.PinOps, total},
		{"Allocs", d.Allocs - c0.Allocs, total},
		{"Deletes", d.Deletes - c0.Deletes, 0},
		{"Reclaims", d.Reclaims - c0.Reclaims, 0},
	} {
		if chk.got != chk.want {
			t.Errorf("%s delta = %d, want %d", chk.name, chk.got, chk.want)
		}
	}
}

// Region lifecycle from 8 goroutines: the lifecycle counters, the arena
// live/deferred region stats, and the traced event stream must all
// account for every region exactly.
func TestLifecycleCountersAndTracerExact(t *testing.T) {
	const workers = 8
	const rounds = 100
	a := NewArena()
	a.EnableMetrics()
	ring := NewRingTracer(1 << 14)
	a.SetTracer(ring)

	c0 := a.Counters()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				r := a.NewRegion()
				sub := r.NewSubregion()
				if n%2 == 0 {
					// Plain teardown: child then parent.
					if err := sub.Delete(); err != nil {
						t.Errorf("sub delete: %v", err)
					}
					if err := r.Delete(); err != nil {
						t.Errorf("delete: %v", err)
					}
				} else {
					// Blocked delete, then deferred reclaim on unpin.
					o := Alloc[traceNode](r)
					unpin := Pin(o)
					if err := r.Delete(); !errors.Is(err, ErrRegionInUse) {
						t.Errorf("pinned delete: %v", err)
					}
					if err := sub.Delete(); err != nil {
						t.Errorf("sub delete: %v", err)
					}
					r.DeleteDeferred()
					unpin()
				}
			}
		}()
	}
	wg.Wait()

	// Per odd round: 2 created, 1 blocked, 1 explicit delete (sub),
	// 1 deferral, 2 reclaims. Per even round: 2 created, 2 deletes,
	// 2 reclaims.
	half := int64(workers * rounds / 2)
	d := a.Counters()
	for _, chk := range []struct {
		name      string
		got, want int64
	}{
		{"Deletes", d.Deletes - c0.Deletes, 2*half + half},
		{"DeletesBlocked", d.DeletesBlocked - c0.DeletesBlocked, half},
		{"DeferredDeletes", d.DeferredDeletes - c0.DeferredDeletes, half},
		{"Reclaims", d.Reclaims - c0.Reclaims, 4 * half},
	} {
		if chk.got != chk.want {
			t.Errorf("%s delta = %d, want %d", chk.name, chk.got, chk.want)
		}
	}

	st := a.Stats()
	if st.LiveRegions != 1 {
		t.Errorf("LiveRegions = %d, want 1 (traditional only)", st.LiveRegions)
	}
	if st.DeferredRegions != 0 {
		t.Errorf("DeferredRegions = %d, want 0", st.DeferredRegions)
	}
	if want := int64(1 + 2*workers*rounds); st.RegionsCreated != want {
		t.Errorf("RegionsCreated = %d, want %d", st.RegionsCreated, want)
	}

	wantEvents := map[TraceKind]uint64{
		TraceRegionCreated:   uint64(2 * workers * rounds),
		TraceRegionDeleted:   uint64(3 * half),
		TraceDeleteBlocked:   uint64(half),
		TraceRegionDeferred:  uint64(half),
		TraceRegionReclaimed: uint64(4 * half),
	}
	var wantTotal uint64
	for _, n := range wantEvents {
		wantTotal += n
	}
	if got := ring.Total(); got != wantTotal {
		t.Errorf("traced events = %d, want %d", got, wantTotal)
	}
	got := make(map[TraceKind]uint64)
	for _, ev := range ring.Events() {
		got[ev.Kind]++
		if ev.Region <= 1 {
			t.Errorf("event %v for region %d (traditional or invalid)", ev.Kind, ev.Region)
		}
	}
	for kind, want := range wantEvents {
		if got[kind] != want {
			t.Errorf("%v events = %d, want %d", kind, got[kind], want)
		}
	}
}

// A full ring keeps the newest events and reports the overwritten ones
// through Total.
func TestRingTracerWrap(t *testing.T) {
	ring := NewRingTracer(16)
	for i := 0; i < 100; i++ {
		ring.Trace(TraceEvent{Kind: TraceRegionCreated, Region: int64(i + 1)})
	}
	if ring.Total() != 100 {
		t.Fatalf("Total = %d, want 100", ring.Total())
	}
	evs := ring.Events()
	if len(evs) != 16 {
		t.Fatalf("len(Events) = %d, want 16", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(84 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

// Concurrent tracing into a shared ring: every event is assigned a
// unique sequence number and none is double-stored.
func TestRingTracerConcurrent(t *testing.T) {
	const workers = 8
	const events = 1000
	ring := NewRingTracer(workers * events)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				ring.Trace(TraceEvent{Kind: TraceRegionCreated, Region: id})
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if got := ring.Total(); got != workers*events {
		t.Fatalf("Total = %d, want %d", got, workers*events)
	}
	evs := ring.Events()
	if len(evs) != workers*events {
		t.Fatalf("len(Events) = %d, want %d", len(evs), workers*events)
	}
	perRegion := make(map[int64]int)
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d (lost or duplicated slot)", i, ev.Seq)
		}
		perRegion[ev.Region]++
	}
	for id, n := range perRegion {
		if n != events {
			t.Fatalf("region %d traced %d events, want %d", id, n, events)
		}
	}
}

// Regression: Region.Stats must return even while hot mutators keep the
// reference count churning. The re-read loop that pairs rc with the
// state word is bounded (statsRCRetries); before the bound a tight
// pin/unpin loop could starve a stats reader indefinitely.
func TestStatsNoLivelockUnderHotRC(t *testing.T) {
	const mutators = 4
	a := NewArena()
	r := a.NewRegion()
	o := Alloc[traceNode](r)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < mutators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					Pin(o)()
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		st := r.Stats()
		if st.RC < 0 || st.RC > mutators {
			t.Fatalf("snapshot rc = %d out of range [0, %d]", st.RC, mutators)
		}
		if st.Deleted {
			t.Fatal("snapshot reports deletion of a live region")
		}
	}
	close(done)
	wg.Wait()
}
