package rcgo

import (
	"fmt"
	"sort"
	"strings"
)

// Whole-arena invariant auditing. Audit cross-checks every piece of
// bookkeeping the runtime maintains redundantly — per-region atomic
// counters, the sharded slot registries, the parent/child population,
// and the arena-wide totals — and reports every inconsistency as a
// structured violation. The paper's safety argument reduces to "a
// region is reclaimed only when its external reference count is zero";
// the auditor checks that the reference counts themselves are telling
// the truth.
//
// Audit is exact on a quiesced arena (no operations in flight): the
// chaos harness (cmd/rcchaos, chaos_test.go) requires a clean report
// after every quiesce point, with failpoints having fired on every
// lifecycle edge. On a live arena the scan is safe (shard locks are
// taken one at a time, like the debug inspector) but counters are read
// at slightly different instants, so in-flight operations can surface
// as transient rc-accounting or total mismatches; a live report is
// advisory, a quiesced report is ground truth.
//
// Exclusive ownership (region_owner.go) narrows the contract in one
// place: while a region is owned, counted slots its owner registered
// through the token are parked on the token and invisible to the
// inbound scan, though each one's external target already carries the
// committed rc unit — so the auditor suppresses the rc-accounting rule
// entirely while any region is owned (sampled at scan start and again
// at check time), and the rule becomes exact again once every token is
// released (the chaos ownership phase audits after quiesce, when
// Acquires == Releases).
// Everything else stays exact: an owned region's unflushed owner-local
// allocations are missing from st.Objects and from its shard's liveObjs
// equally, so the live-objects-total cross-check holds throughout.

// Audit rule names, one per invariant class. Enumerated in DESIGN.md
// §"Failure model".
const (
	// AuditNegativeCounter: a region counter (rc, pins, objects,
	// subregions) is negative — an unbalanced increment/decrement pair.
	AuditNegativeCounter = "negative-counter"
	// AuditPinsExceedRC: pins > rc; every pin is part of rc, so the pin
	// subset can never exceed the whole.
	AuditPinsExceedRC = "pins-exceed-rc"
	// AuditDeadInRegistry: a reclaimed region is still in the id
	// registry; reclaim must unregister exactly once.
	AuditDeadInRegistry = "dead-in-registry"
	// AuditRCAccounting: rc != pins + registered external slots pointing
	// at the region; some reference exists that neither the pin counter
	// nor any slot registry accounts for (or vice versa).
	AuditRCAccounting = "rc-accounting"
	// AuditChildrenCount: a region's subregion counter disagrees with
	// the number of registered regions naming it as parent.
	AuditChildrenCount = "children-count"
	// AuditParentDead: a region's parent has been reclaimed while the
	// child remains — deletion order must be children-first.
	AuditParentDead = "parent-dead"
	// AuditSlotIntoDead: a registered counted slot points into a
	// reclaimed region — a dangling reference, the exact failure the
	// paper's safety property forbids.
	AuditSlotIntoDead = "slot-into-dead"
	// AuditZombieReclaimable: a zombie region has rc 0 and no
	// subregions but was not reclaimed — a lost drain wakeup (the
	// zombie.drain failpoint induces this; SweepZombies heals it).
	AuditZombieReclaimable = "zombie-reclaimable"
	// AuditLiveRegionsTotal / AuditDeferredRegionsTotal /
	// AuditLiveObjectsTotal: a fabric shard's slice of an arena-wide
	// total disagrees with the sum over the regions assigned to that
	// shard (region_fabric.go). Checked per shard, so a region accounted
	// on the wrong shard is a violation even when the arena-wide sum
	// happens to balance.
	AuditLiveRegionsTotal     = "live-regions-total"
	AuditDeferredRegionsTotal = "deferred-regions-total"
	AuditLiveObjectsTotal     = "live-objects-total"
	// AuditAllocPending: a non-reclaimed region still holds batched
	// allocation deltas (region_alloccache.go) immediately after the
	// Stats flush the auditor just performed. On a quiesced arena every
	// delta must have drained — a residue means a flush point was missed;
	// on a live arena in-flight allocations make this advisory, like
	// rc-accounting.
	AuditAllocPending = "alloc-pending"
	// AuditOwnedState: a region's owned flag and its owner token pointer
	// disagree — stateOwned with no Owner installed, or an Owner
	// installed on a region that is not owned (region_owner.go). Both
	// sides change together under the lifecycle mutex, so a quiesced
	// disagreement means a broken acquire/release transition; on a live
	// arena a transition between the two reads makes this advisory.
	AuditOwnedState = "owned-state"
	// AuditOwnedRegionsTotal: a fabric shard's ownedRegions counter
	// disagrees with the registered stateOwned regions assigned to it,
	// same per-shard discipline as the other total rules.
	AuditOwnedRegionsTotal = "owned-regions-total"
	// AuditWaitersOnUnowned: a region that is not exclusively owned has
	// AcquireContext waiters parked on its queue (region_owner.go).
	// Waiters are appended only while stateOwned and the hand-off never
	// leaves the queue non-empty when returning the region to the shared
	// state, so a stable disagreement means a broken park/hand-off
	// transition; on a live arena a transition between the two samples
	// makes this advisory.
	AuditWaitersOnUnowned = "waiters-on-unowned"
	// AuditAcquireWaitersTotal: a fabric shard's acquireWaiters gauge
	// disagrees with the summed wait-queue lengths of the regions
	// assigned to it, same per-shard discipline as the other total
	// rules. Exact at quiesce (every parked waiter is counted on its
	// region's shard at park and uncounted at pop/splice/queue-failure).
	AuditAcquireWaitersTotal = "acquire-waiters-total"
	// AuditSlabPagesTotal: the backing store's in-use page count
	// disagrees with the pages tracked by the registered regions' slab
	// page lists (region_slab.go). At quiesce every carved page is on
	// exactly one live region's list and every reclaimed region's pages
	// are back in the store, so a surplus on the store side is a leaked
	// page — the exact failure the chaos slab phase judges. On a live
	// arena an in-flight carve or reclaim makes this advisory, like the
	// other totals.
	AuditSlabPagesTotal = "slab-pages-total"
	// AuditSlabStoreAccounting: the backing store's own partition is
	// inconsistent — carved pages != in-use + free. This invariant
	// holds under the store mutex at all times, so even a live-arena
	// violation means corrupt store bookkeeping, never in-flight skew.
	AuditSlabStoreAccounting = "slab-store-accounting"
)

// AuditViolation is one detected invariant breach.
type AuditViolation struct {
	// Rule is the Audit* rule name.
	Rule string `json:"rule"`
	// Region is the region the violation is about (0 for arena-wide
	// totals).
	Region int64 `json:"region,omitempty"`
	// Got and Want are the disagreeing values, where the rule has a
	// numeric shape.
	Got  int64 `json:"got"`
	Want int64 `json:"want"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
}

func (v AuditViolation) String() string {
	if v.Region != 0 {
		return fmt.Sprintf("%s: region %d: %s", v.Rule, v.Region, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Rule, v.Detail)
}

// AuditReport is the result of one Audit pass.
type AuditReport struct {
	// RegionsScanned and SlotsScanned size the scan: every registered
	// region, and every registered counted slot of every one of them.
	RegionsScanned int `json:"regions_scanned"`
	SlotsScanned   int `json:"slots_scanned"`
	// Violations is every invariant breach found, sorted by rule then
	// region; empty (and OK true) on a healthy arena.
	Violations []AuditViolation `json:"violations"`
	// OK is len(Violations) == 0.
	OK bool `json:"ok"`
}

// String renders the report for logs: one line when clean, one line per
// violation otherwise.
func (rep AuditReport) String() string {
	if rep.OK {
		return fmt.Sprintf("audit: ok (%d regions, %d slots)",
			rep.RegionsScanned, rep.SlotsScanned)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s) over %d regions, %d slots\n",
		len(rep.Violations), rep.RegionsScanned, rep.SlotsScanned)
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Audit scans the whole arena and cross-checks its redundant
// bookkeeping (see the file comment for the exactness contract). The
// scan never blocks the runtime: it takes registry and slot shard locks
// one at a time, exactly like the debug inspector.
func (a *Arena) Audit() AuditReport {
	var rep AuditReport
	add := func(rule string, region int64, got, want int64, format string, args ...any) {
		rep.Violations = append(rep.Violations, AuditViolation{
			Rule: rule, Region: region, Got: got, Want: want,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	var regions []*Region
	a.EachRegion(func(r *Region) { regions = append(regions, r) })
	rep.RegionsScanned = len(regions)

	// While any region is owned, counted slots parked on its Owner token
	// are invisible to the inbound scan below even though their targets'
	// rc units are committed, so the rc-accounting rule would report
	// structural undercounts that are not violations. Sample here and
	// again at check time; either sample nonzero suppresses the rule
	// (see the file comment — every other rule stays exact).
	ownedSomewhere := a.OwnedRegions() != 0

	// Pass 1: the slot registries. inbound[target] counts registered
	// external counted slots pointing at target; each such slot holds
	// exactly one committed rc unit on its target.
	inbound := make(map[*Region]int64, len(regions))
	for _, holder := range regions {
		for i := range holder.slots {
			sh := &holder.slots[i]
			sh.mu.Lock()
			slots := append([]releaser(nil), sh.slots...)
			sh.mu.Unlock()
			rep.SlotsScanned += len(slots)
			for _, s := range slots {
				t := s.targetRegion()
				if t == nil || t == holder {
					continue
				}
				inbound[t]++
				// Re-read after classifying so a slot cleared or a target
				// reclaimed mid-scan does not report a spurious dangle.
				if t.Stats().Reclaimed && s.targetRegion() == t {
					add(AuditSlotIntoDead, holder.id, t.id, 0,
						"registered counted slot points into reclaimed region %d", t.id)
				}
			}
		}
	}

	// Pass 2: per-region counters and state legality, plus the
	// parent/child population. The per-region sums are indexed by the
	// fabric shard each region is assigned to (decoded from its id), so
	// pass 3 can hold every shard to its own slice of the totals.
	childCount := make(map[*Region]int64, len(regions))
	liveByShard := make([]int64, len(a.shards))
	deferredByShard := make([]int64, len(a.shards))
	ownedByShard := make([]int64, len(a.shards))
	objByShard := make([]int64, len(a.shards))
	waitersByShard := make([]int64, len(a.shards))
	for _, r := range regions {
		ownerBefore := r.owner.Load() != nil
		waitersBefore := r.waiterCount()
		st := r.Stats()
		if st.Reclaimed {
			if a.findRegion(r.id) != nil {
				add(AuditDeadInRegistry, r.id, 0, 0, "reclaimed region still registered")
			}
			// Reclaimed and unregistered: it died between the walk and
			// this read — not part of the population being audited.
			continue
		}
		shard := int(uint64(r.id) & a.shardMask)
		if st.Deferred {
			deferredByShard[shard]++
		} else {
			liveByShard[shard]++
		}
		if st.Owned {
			ownedByShard[shard]++
		}
		// Owner linkage: the owned flag and the token pointer transition
		// together under mu. Sample the pointer on both sides of the
		// Stats snapshot so only a disagreement stable across the window
		// is reported (a concurrent acquire or release between the reads
		// is not a violation).
		ownerAfter := r.owner.Load() != nil
		if st.Owned && !ownerBefore && !ownerAfter {
			add(AuditOwnedState, r.id, 1, 0, "region is stateOwned with no Owner token installed")
		}
		if !st.Owned && ownerBefore && ownerAfter {
			add(AuditOwnedState, r.id, 0, 1, "Owner token installed on a region that is not owned")
		}
		// Queue linkage: waiters may exist only while the region is owned.
		// Double-sampled around the Stats snapshot like the owner pointer,
		// so a hand-off or a Release draining the queue between the reads
		// is not a violation.
		waitersAfter := r.waiterCount()
		waitersByShard[shard] += int64(waitersAfter)
		if !st.Owned && waitersBefore > 0 && waitersAfter > 0 {
			add(AuditWaitersOnUnowned, r.id, int64(waitersAfter), 0,
				"%d AcquireContext waiters parked on a region that is not owned", waitersAfter)
		}
		objByShard[shard] += st.Objects
		for name, v := range map[string]int64{
			"rc": st.RC, "pins": st.Pins, "objects": st.Objects, "subregions": st.Subregions,
		} {
			if v < 0 {
				add(AuditNegativeCounter, r.id, v, 0, "%s = %d", name, v)
			}
		}
		if st.Pins > st.RC {
			add(AuditPinsExceedRC, r.id, st.Pins, st.RC, "pins %d > rc %d", st.Pins, st.RC)
		}
		if want := st.Pins + inbound[r]; st.RC != want &&
			!ownedSomewhere && a.OwnedRegions() == 0 {
			add(AuditRCAccounting, r.id, st.RC, want,
				"rc %d != pins %d + inbound slots %d", st.RC, st.Pins, inbound[r])
		}
		// st came from Stats, which drained the region's delta shards;
		// anything parked now arrived after that flush.
		if c := r.acache.Load(); c != nil {
			if d := c.sum(); d != 0 {
				add(AuditAllocPending, r.id, d, 0,
					"%d batched allocation deltas parked after a Stats flush", d)
			}
		}
		if st.Deferred && st.RC == 0 && st.Subregions == 0 {
			add(AuditZombieReclaimable, r.id, st.RC, 0,
				"zombie with rc 0 and no subregions was not reclaimed")
		}
		if p := r.parent; p != nil {
			childCount[p]++
			if p.Stats().Reclaimed {
				add(AuditParentDead, r.id, p.id, 0,
					"parent region %d reclaimed before this child", p.id)
			}
		}
	}
	for _, r := range regions {
		st := r.Stats()
		if st.Reclaimed {
			continue
		}
		if got := childCount[r]; st.Subregions != got {
			add(AuditChildrenCount, r.id, st.Subregions, got,
				"subregions counter %d != %d registered children", st.Subregions, got)
		}
	}

	// Pass 3: fabric totals against the per-region sums, shard by
	// shard. Each fabric shard's counters must cover exactly the regions
	// whose ids encode that shard — a region accounted on the wrong
	// shard shows up as a paired mismatch here, not as silent drift that
	// happens to cancel in an arena-wide sum.
	for i := range a.shards {
		sh := &a.shards[i]
		if got, want := sh.liveRegions.Load(), liveByShard[i]; got != want {
			add(AuditLiveRegionsTotal, 0, got, want,
				"shard %d LiveRegions %d != %d alive registered regions", i, got, want)
		}
		if got, want := sh.deferredRegions.Load(), deferredByShard[i]; got != want {
			add(AuditDeferredRegionsTotal, 0, got, want,
				"shard %d DeferredRegions %d != %d zombie registered regions", i, got, want)
		}
		if got, want := sh.liveObjs.Load(), objByShard[i]; got != want {
			add(AuditLiveObjectsTotal, 0, got, want,
				"shard %d LiveObjects %d != %d summed over regions", i, got, want)
		}
		if got, want := sh.ownedRegions.Load(), ownedByShard[i]; got != want {
			add(AuditOwnedRegionsTotal, 0, got, want,
				"shard %d OwnedRegions %d != %d owned registered regions", i, got, want)
		}
		if got, want := sh.acquireWaiters.Load(), waitersByShard[i]; got != want {
			add(AuditAcquireWaitersTotal, 0, got, want,
				"shard %d AcquireWaiters %d != %d summed wait-queue lengths", i, got, want)
		}
	}

	// Pass 4: the backing store (region_slab.go), when attached. The
	// store's in-use pages must be exactly the pages the registered
	// regions track — anything more is a page no reclaim will ever
	// return — and the store's own carved = in-use + free partition
	// must balance.
	if a.backing != nil {
		var tracked int64
		for _, r := range regions {
			tracked += r.slabPageCount()
		}
		ss := a.backing.Stats()
		if ss.InUsePages != tracked {
			add(AuditSlabPagesTotal, 0, ss.InUsePages, tracked,
				"backing store has %d pages in use, registered regions track %d", ss.InUsePages, tracked)
		}
		if ss.CarvedPages != ss.InUsePages+ss.FreePages {
			add(AuditSlabStoreAccounting, 0, ss.CarvedPages, ss.InUsePages+ss.FreePages,
				"store carved %d pages != %d in use + %d free", ss.CarvedPages, ss.InUsePages, ss.FreePages)
		}
	}

	sort.Slice(rep.Violations, func(i, j int) bool {
		if rep.Violations[i].Rule != rep.Violations[j].Rule {
			return rep.Violations[i].Rule < rep.Violations[j].Rule
		}
		return rep.Violations[i].Region < rep.Violations[j].Region
	})
	rep.OK = len(rep.Violations) == 0
	return rep
}
