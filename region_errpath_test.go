package rcgo

import (
	"errors"
	"testing"
	"time"

	"rcgo/internal/failpoint"
)

// Error-path coverage for the Try* operations against each non-alive
// lifecycle state: dead (Delete), zombie (DeleteDeferred with a live
// pin), and the transient dying window (held open with an ActionHook
// failpoint on rcgo/delete.dying).

func TestTryOpsOnDeletedRegion(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	o := Alloc[int](r)
	if err := r.Delete(); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := TryAlloc[int](r); !errors.Is(err, ErrRegionDeleted) {
		t.Errorf("TryAlloc on dead region: %v, want ErrRegionDeleted", err)
	}
	if _, err := r.TryNewSubregion(); !errors.Is(err, ErrRegionDeleted) {
		t.Errorf("TryNewSubregion on dead region: %v, want ErrRegionDeleted", err)
	}
	if _, err := TryPin(o); !errors.Is(err, ErrRegionDeleted) {
		t.Errorf("TryPin on dead region: %v, want ErrRegionDeleted", err)
	}
	if err := r.Delete(); !errors.Is(err, ErrRegionDeleted) {
		t.Errorf("second Delete: %v, want ErrRegionDeleted", err)
	}
}

func TestTryOpsOnZombieRegion(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	o := Alloc[int](r)
	unpin := Pin(o)
	r.DeleteDeferred() // pinned: becomes a zombie, not dead

	// New references, allocations, and subregions are all rejected while
	// the zombie awaits reclamation...
	if _, err := TryAlloc[int](r); !errors.Is(err, ErrRegionDeleted) {
		t.Errorf("TryAlloc on zombie: %v, want ErrRegionDeleted", err)
	}
	if _, err := r.TryNewSubregion(); !errors.Is(err, ErrRegionDeleted) {
		t.Errorf("TryNewSubregion on zombie: %v, want ErrRegionDeleted", err)
	}
	if _, err := TryPin(o); !errors.Is(err, ErrRegionDeleted) {
		t.Errorf("TryPin on zombie: %v, want ErrRegionDeleted", err)
	}
	if err := r.Delete(); !errors.Is(err, ErrRegionDeleted) {
		t.Errorf("Delete on zombie: %v, want ErrRegionDeleted", err)
	}
	// ...but the existing pinned reference keeps the objects usable
	// (the paper's GC-like third deletion policy).
	*o.Use() = 7
	if got := a.Stats().DeferredRegions; got != 1 {
		t.Fatalf("DeferredRegions = %d, want 1", got)
	}

	unpin()
	if got := a.Stats().DeferredRegions; got != 0 {
		t.Fatalf("DeferredRegions after unpin = %d, want 0", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Use of object in reclaimed zombie did not panic")
			}
		}()
		o.Use()
	}()
}

// Holds the dying window open with a hook on rcgo/delete.dying and
// checks both transient behaviours: TryPin spins (does not error) until
// the deleting goroutine decides, then observes the decision; and a
// delete that fails (subregion present) lets the waiting TryPin succeed.
func TestTryPinDuringDyingWindow(t *testing.T) {
	defer failpoint.Disable("rcgo/delete.dying")

	run := func(t *testing.T, held bool) (deleteErr, pinErr error) {
		a := NewArena()
		r := a.NewRegion()
		o := Alloc[int](r)
		var unpin func()
		if held {
			// An existing pin spoils the delete at its rc check, which
			// happens *inside* the dying window (subregions are checked
			// before it opens).
			unpin = Pin(Alloc[int](r))
		}
		entered := make(chan struct{})
		release := make(chan struct{})
		if err := failpoint.Enable("rcgo/delete.dying", failpoint.Rule{
			Action: failpoint.ActionHook,
			Hook:   func() { close(entered); <-release },
		}); err != nil {
			t.Fatal(err)
		}
		delDone := make(chan error, 1)
		go func() { delDone <- r.Delete() }()
		<-entered // the deleter is parked mid-decision, state is dying

		pinDone := make(chan error, 1)
		go func() { _, err := TryPin(o); pinDone <- err }()
		select {
		case err := <-pinDone:
			t.Fatalf("TryPin returned %v during the dying window; must wait for the decision", err)
		case <-time.After(20 * time.Millisecond):
		}

		failpoint.Disable("rcgo/delete.dying") // don't re-trigger on retries
		close(release)
		deleteErr, pinErr = <-delDone, <-pinDone
		if unpin != nil {
			unpin()
		}
		return deleteErr, pinErr
	}

	t.Run("delete-commits", func(t *testing.T) {
		deleteErr, pinErr := run(t, false)
		if deleteErr != nil {
			t.Fatalf("Delete: %v, want success", deleteErr)
		}
		if !errors.Is(pinErr, ErrRegionDeleted) {
			t.Fatalf("TryPin after committed delete: %v, want ErrRegionDeleted", pinErr)
		}
	})
	t.Run("delete-fails", func(t *testing.T) {
		deleteErr, pinErr := run(t, true)
		if !errors.Is(deleteErr, ErrRegionInUse) {
			t.Fatalf("Delete with held pin: %v, want ErrRegionInUse", deleteErr)
		}
		if pinErr != nil {
			t.Fatalf("TryPin after failed delete: %v, want success", pinErr)
		}
	})
}

// The mutating operations also surface injected admission failures as
// ErrInjected-wrapped errors distinct from the lifecycle errors.
func TestTryOpsInjectedErrors(t *testing.T) {
	defer failpoint.DisableAll()
	a := NewArena()
	r := a.NewRegion()
	o := Alloc[int](r)

	if err := failpoint.Enable("rcgo/alloc.admission", failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	if _, err := TryAlloc[int](r); !errors.Is(err, ErrInjected) {
		t.Errorf("TryAlloc under injection: %v, want ErrInjected", err)
	} else if errors.Is(err, ErrRegionDeleted) {
		t.Errorf("injected alloc error must not read as ErrRegionDeleted: %v", err)
	}
	failpoint.Disable("rcgo/alloc.admission")

	if err := failpoint.Enable("rcgo/incrc.validate", failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	if _, err := TryPin(o); !errors.Is(err, ErrInjected) {
		t.Errorf("TryPin under injection: %v, want ErrInjected", err)
	}
	failpoint.Disable("rcgo/incrc.validate")

	// The failed pin left no residue: the region deletes cleanly.
	if err := r.Delete(); err != nil {
		t.Fatalf("Delete after injected pin: %v", err)
	}
	if got := a.Stats().LiveObjects; got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
}
