package rcgo

import (
	"bytes"
	"strings"
	"testing"

	"rcgo/internal/rlang"
)

var libFile = File{Name: "list.rc", Src: `
struct rlist { struct rlist *sameregion next; int v; };

// Non-static: callable from other files, so the inference must assume
// arbitrary callers (the check inside stays at runtime).
struct rlist *cons(region r, int v, struct rlist *rest) {
	struct rlist *n = ralloc(r, struct rlist);
	n->v = v;
	n->next = rest;
	return n;
}

// Static helper: private to this file; its single call site (below)
// passes matching regions, so the inference verifies its store.
static struct rlist *cons_local(region r, int v, struct rlist *rest) {
	struct rlist *n = ralloc(r, struct rlist);
	n->v = v;
	n->next = rest;
	return n;
}

struct rlist *pair(region r, int a, int b) {
	return cons_local(r, a, cons_local(r, b, null));
}
`}

var mainFile = File{Name: "main.rc", Src: `
struct rlist;
struct rlist *cons(region r, int v, struct rlist *rest);
struct rlist *pair(region r, int a, int b);
int sum(struct rlist *l);

deletes void main(void) {
	region r = newregion();
	struct rlist *l = pair(r, 1, 2);
	l = cons(r, 3, l);
	print_int(sum(l));
	l = null;
	deleteregion(r);
	print_str(" done");
}
`}

func TestCompileFilesRunsAcrossUnits(t *testing.T) {
	// Note: both list.rc and sum.rc declare struct rlist; the checker
	// rejects duplicate struct declarations, so share via one file here.
	files := []File{libFile, {Name: "main.rc", Src: mainFile.Src + `
int sum(struct rlist *l) {
	int s = 0;
	while (l) { s = s + l->v; l = l->next; }
	return s;
}`}}
	// Remove the prototype-only sum from mainFile's src? It is identical
	// to the definition's signature, so the checker accepts both.
	c, err := CompileFiles(files, ModeInf)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Run(c, RunConfig{Output: &buf}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "6 done" {
		t.Errorf("output = %q", buf.String())
	}
}

func TestCompileFilesBoundarySemantics(t *testing.T) {
	files := []File{libFile, {Name: "main.rc", Src: mainFile.Src + `
int sum(struct rlist *l) {
	int s = 0;
	while (l) { s = s + l->v; l = l->next; }
	return s;
}`}}
	c, err := CompileFiles(files, ModeInf)
	if err != nil {
		t.Fatal(err)
	}
	// cons is non-static: its summary is pinned empty, its store stays
	// checked. cons_local is static: its store is verified.
	in := c.Infer.Summaries["cons"].Input
	if in.IsUniverse() || in.Len() != 0 {
		t.Error("non-static cons kept an input property across the file boundary")
	}
	safeOf := func(fn string) (safe, total int) {
		f := c.Rlang.Funcs[fn]
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				if s.Kind == rlang.SFieldWrite && s.Site >= 0 && c.Infer.SiteSeen[s.Site] {
					total++
					if c.Infer.SafeSite[s.Site] {
						safe++
					}
				}
			}
		}
		return
	}
	if s, n := safeOf("cons"); n != 1 || s != 0 {
		t.Errorf("cons: %d/%d safe, want 0/1 (external boundary)", s, n)
	}
	if s, n := safeOf("cons_local"); n != 1 || s != 1 {
		t.Errorf("cons_local: %d/%d safe, want 1/1 (static, in-file callers)", s, n)
	}
	// Whole-program compilation of the same concatenated source verifies
	// cons too — the boundary is what makes the difference.
	whole, err := Compile(files[0].Src+files[1].Src, ModeInf)
	if err != nil {
		t.Fatal(err)
	}
	cw, _ := wholeSafeOf(whole, "cons")
	if cw != 1 {
		t.Errorf("whole-program cons not verified (%d)", cw)
	}
}

func wholeSafeOf(c *Compiled, fn string) (safe, total int) {
	f := c.Rlang.Funcs[fn]
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == rlang.SFieldWrite && s.Site >= 0 && c.Infer.SiteSeen[s.Site] {
				total++
				if c.Infer.SafeSite[s.Site] {
					safe++
				}
			}
		}
	}
	return
}

func TestCompileFilesErrors(t *testing.T) {
	_, err := CompileFiles(nil, ModeInf)
	if err == nil {
		t.Error("empty file list accepted")
	}
	_, err = CompileFiles([]File{
		{Name: "a.rc", Src: "int f(void) { return 1; } void main(void) { print_int(f()); }"},
		{Name: "b.rc", Src: "int f(void) { return 2; }"},
	}, ModeInf)
	if err == nil || !strings.Contains(err.Error(), "already defined") {
		t.Errorf("duplicate definition across files: %v", err)
	}
	_, err = CompileFiles([]File{{Name: "bad.rc", Src: "void main( {"}}, ModeInf)
	if err == nil || !strings.Contains(err.Error(), "bad.rc") {
		t.Errorf("parse error not attributed to file: %v", err)
	}
}
