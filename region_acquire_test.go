package rcgo

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcgo/internal/failpoint"
)

// Every shared-path refusal of an owned region must carry ErrRegionOwned
// through its wrap chain — holder- and target-side of all four store
// flavours, allocation, pinning, subregion creation, deletion, and a
// second acquisition (both entry points).
func TestRegionOwnedUnwrapChains(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	obj := Alloc[crossNode](r)
	other := a.NewRegion()
	outside := Alloc[crossNode](other)
	trad := Alloc[crossNode](a.Traditional())
	parent := a.NewRegion()
	child := parent.NewSubregion()
	childObj := Alloc[crossNode](child)
	parentObj := Alloc[crossNode](parent)

	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	childOwn, err := child.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		err  error
	}{
		{"second TryAcquire", func() error { _, err := r.TryAcquire(); return err }()},
		{"blocking AcquireContext refusal", func() error {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := r.AcquireContext(ctx)
			return err
		}()},
		{"shared alloc", func() error { _, err := TryAlloc[crossNode](r); return err }()},
		{"TryPin", func() error { _, err := TryPin(obj); return err }()},
		{"TryNewSubregion", func() error { _, err := r.TryNewSubregion(); return err }()},
		{"shared Delete", r.Delete()},
		{"counted store, owned holder", SetRef(obj, &obj.Value.Other, outside)},
		{"counted store, owned target", SetRef(outside, &outside.Value.Other, obj)},
		{"sameregion store, owned holder", SetSame(obj, &obj.Value.Other, obj)},
		{"traditional store, owned holder", SetTrad(obj, &obj.Value.Other, trad)},
		{"parentptr store, owned holder", SetParent(childObj, &childObj.Value.Up, parentObj)},
	} {
		if tc.err == nil {
			t.Errorf("%s: succeeded, want ErrRegionOwned", tc.name)
			continue
		}
		if !errors.Is(tc.err, ErrRegionOwned) {
			t.Errorf("%s: %v does not unwrap to ErrRegionOwned", tc.name, tc.err)
		}
		if errors.Is(tc.err, ErrRegionDeleted) {
			t.Errorf("%s: %v also unwraps to ErrRegionDeleted — wrong class", tc.name, tc.err)
		}
	}

	if err := childOwn.Release(); err != nil {
		t.Fatal(err)
	}
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
}

// AcquireContext on a free region is the fast path: no parking, no wait
// metrics. An already-expired context refuses before touching the
// region, wrapping both the context cause and ErrRegionOwned.
func TestAcquireContextFastPath(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.AcquireContext(ctx); !errors.Is(err, context.Canceled) || !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("pre-cancelled acquire: %v, want both context.Canceled and ErrRegionOwned", err)
	}

	own, err := r.AcquireContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Owned() {
		t.Fatal("region not owned after AcquireContext")
	}
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	c := a.Counters()
	if c.Acquires != 1 || c.Releases != 1 {
		t.Fatalf("counters = acquires %d releases %d, want 1/1", c.Acquires, c.Releases)
	}
	if c.AcquireWaits != 0 || c.AcquireTimeouts != 0 || c.AcquireCancels != 0 {
		t.Fatalf("fast path recorded waits: waits=%d timeouts=%d cancels=%d, want 0/0/0",
			c.AcquireWaits, c.AcquireTimeouts, c.AcquireCancels)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
}

// waitForWaiters blocks until the region's parked-waiter count reaches
// n (the parking worker publishes it under r.mu, so polling is exact).
func waitForWaiters(t *testing.T, r *Region, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.waiterCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d parked waiters (have %d)", n, r.waiterCount())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Parked waiters are served strictly first-come-first-served: Release
// hands the token to the queue head, and each successor inherits
// directly without re-contending.
func TestAcquireContextFIFOHandOff(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 4
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		waitForWaiters(t, r, i) // park in a known order
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tok, err := r.AcquireContext(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			if err := tok.Release(); err != nil {
				t.Errorf("waiter %d release: %v", i, err)
			}
		}(i)
	}
	waitForWaiters(t, r, waiters)
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("hand-off order violated: got waiter %d in slot %d", got, want)
		}
		want++
	}

	c := a.Counters()
	if c.Acquires != waiters+1 || c.Releases != waiters+1 {
		t.Fatalf("counters = acquires %d releases %d, want %d/%d", c.Acquires, c.Releases, waiters+1, waiters+1)
	}
	if c.AcquireWaits != waiters {
		t.Fatalf("AcquireWaits = %d, want %d", c.AcquireWaits, waiters)
	}
	if c.AcquireWaitNanos <= 0 {
		t.Fatalf("AcquireWaitNanos = %d, want > 0", c.AcquireWaitNanos)
	}
	if got := a.AcquireWaiters(); got != 0 {
		t.Fatalf("leaked waiters on the shard gauge: %d", got)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}

// A deadline or cancellation removes the parked waiter without leaking
// its queue slot, and the error wraps both the context cause and
// ErrRegionOwned.
func TestAcquireContextDeadlineAndCancel(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := r.AcquireContext(ctx); !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("deadline acquire: %v, want both context.DeadlineExceeded and ErrRegionOwned", err)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.AcquireContext(cctx)
		done <- err
	}()
	waitForWaiters(t, r, 1)
	ccancel()
	if err := <-done; !errors.Is(err, context.Canceled) || !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("cancelled acquire: %v, want both context.Canceled and ErrRegionOwned", err)
	}

	if got := r.waiterCount(); got != 0 {
		t.Fatalf("queue not empty after aborts: %d waiters", got)
	}
	if got := a.AcquireWaiters(); got != 0 {
		t.Fatalf("leaked waiters on the shard gauge: %d", got)
	}
	c := a.Counters()
	if c.AcquireTimeouts != 1 || c.AcquireCancels != 1 {
		t.Fatalf("abort counters = timeouts %d cancels %d, want 1/1", c.AcquireTimeouts, c.AcquireCancels)
	}
	// The holder is unaffected, and the region is reusable after release.
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	own2, err := r.TryAcquire()
	if err != nil {
		t.Fatalf("region unusable after aborted waits: %v", err)
	}
	if err := own2.Release(); err != nil {
		t.Fatal(err)
	}
}

// Owner.Delete with parked waiters fails them all with ErrRegionDeleted
// — they can never be handed a token to a dead region.
func TestAcquireContextRegionDeletedMidWait(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 3
	done := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := r.AcquireContext(context.Background())
			done <- err
		}()
	}
	waitForWaiters(t, r, waiters)
	if err := own.Delete(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < waiters; i++ {
		if err := <-done; !errors.Is(err, ErrRegionDeleted) {
			t.Fatalf("waiter on deleted region: %v, want ErrRegionDeleted", err)
		}
	}
	if got := a.AcquireWaiters(); got != 0 {
		t.Fatalf("leaked waiters on the shard gauge: %d", got)
	}
	c := a.Counters()
	if c.Acquires != 1 || c.Releases != 1 {
		t.Fatalf("counters = acquires %d releases %d, want 1/1 (failed waiters count nothing)",
			c.Acquires, c.Releases)
	}
	if got := a.LiveRegions(); got != 1 {
		t.Fatalf("LiveRegions = %d, want 1 (traditional)", got)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}

// The cancel-during-wake race, determinized: an own.handoff hook cancels
// the waiter's context under r.mu, after the waiter can no longer
// remove itself but before the token is sent. The delivered token must
// be counted and immediately disposed — Acquires still equals Releases
// and nothing leaks.
func TestAcquireContextCancelWhileWoken(t *testing.T) {
	defer failpoint.DisableAll()
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := r.AcquireContext(ctx)
		done <- err
	}()
	waitForWaiters(t, r, 1)
	if err := failpoint.Enable("rcgo/own.handoff",
		failpoint.Rule{Action: failpoint.ActionHook, Hook: cancel}); err != nil {
		t.Fatal(err)
	}
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, context.Canceled) || !errors.Is(err, ErrRegionOwned) {
		t.Fatalf("woken-then-cancelled acquire: %v, want both context.Canceled and ErrRegionOwned", err)
	}
	failpoint.DisableAll()

	if r.Owned() {
		t.Fatal("region still owned after the disposed hand-off")
	}
	if got := a.AcquireWaiters(); got != 0 {
		t.Fatalf("leaked waiters on the shard gauge: %d", got)
	}
	c := a.Counters()
	// The delivered-then-disposed token counts a full acquire/release
	// cycle: 2 acquires (holder + disposed successor), 2 releases.
	if c.Acquires != 2 || c.Releases != 2 {
		t.Fatalf("counters = acquires %d releases %d, want 2/2", c.Acquires, c.Releases)
	}
	if c.AcquireCancels != 1 {
		t.Fatalf("AcquireCancels = %d, want 1", c.AcquireCancels)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}

// An injected own.handoff refusal requeues the waiter at the tail and
// retries: with Den > Num the delivery always eventually lands, so the
// waiter still gets its token.
func TestAcquireContextHandoffFailpointRetries(t *testing.T) {
	defer failpoint.DisableAll()
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tok, err := r.AcquireContext(context.Background())
		if err == nil {
			err = tok.Release()
		}
		done <- err
	}()
	waitForWaiters(t, r, 1)
	if err := failpoint.Enable("rcgo/own.handoff",
		failpoint.Rule{Action: failpoint.ActionError, Num: 1, Den: 2, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter never recovered from injected hand-off refusals: %v", err)
	}
	failpoint.DisableAll()
	if got := a.AcquireWaiters(); got != 0 {
		t.Fatalf("leaked waiters on the shard gauge: %d", got)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
}

// revokeOwner is expect-guarded: it refuses after a legitimate release
// and refuses a stale expectation after re-acquisition, so a watchdog
// pass racing a normal Release can never tear the token from a fresh
// holder.
func TestRevokeOwnerExpectGuard(t *testing.T) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	if r.revokeOwner(nil) {
		t.Fatal("revoked with a nil expectation")
	}
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	if r.revokeOwner(own) {
		t.Fatal("revoked an already-released token")
	}
	own2, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	if r.revokeOwner(own) {
		t.Fatal("revoked the new holder through a stale expectation")
	}
	if !r.revokeOwner(own2) {
		t.Fatal("failed to revoke the current holder")
	}
	// The revoked token fails everything with ErrOwnerRevoked.
	if _, err := TryAllocOwned[crossNode](own2); !errors.Is(err, ErrOwnerRevoked) {
		t.Fatalf("alloc on revoked token: %v, want ErrOwnerRevoked", err)
	}
	if err := SetSameOwned[crossNode, crossNode](own2, nil, nil, nil); !errors.Is(err, ErrOwnerRevoked) {
		t.Fatalf("store on revoked token: %v, want ErrOwnerRevoked", err)
	}
	if err := own2.Release(); !errors.Is(err, ErrOwnerRevoked) {
		t.Fatalf("release of revoked token: %v, want ErrOwnerRevoked", err)
	}
	if err := own2.Delete(); !errors.Is(err, ErrOwnerRevoked) {
		t.Fatalf("delete of revoked token: %v, want ErrOwnerRevoked", err)
	}
	if r.Owned() {
		t.Fatal("region still owned after revocation with no waiters")
	}
	c := a.Counters()
	if c.OwnerRevocations != 1 {
		t.Fatalf("OwnerRevocations = %d, want 1", c.OwnerRevocations)
	}
	if c.Acquires != 2 || c.Releases+c.OwnerRevocations != 2 {
		t.Fatalf("imbalance: acquires %d, releases %d + revocations %d",
			c.Acquires, c.Releases, c.OwnerRevocations)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}

// The owner watchdog flags a stale holder with its acquire site and
// queue depth, and — once ForceReleaseAfter elapses — revokes the token
// and hands the region to the parked waiter.
func TestOwnerWatchdogFlagsAndRevokes(t *testing.T) {
	a := NewArena(WithMetrics())
	wd := NewOwnerWatchdog(a, time.Hour, nil)
	wd.ForceReleaseAfter = 3 * time.Hour
	a.SetTracer(wd)
	defer a.SetTracer(nil)
	clock := time.Now()
	wd.now = func() time.Time { return clock }

	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		tok, err := r.AcquireContext(context.Background())
		if err == nil {
			err = tok.Release()
		}
		got <- err
	}()
	waitForWaiters(t, r, 1)

	if stale := wd.Check(); stale != nil {
		t.Fatalf("flagged before the threshold: %+v", stale)
	}
	clock = clock.Add(2 * time.Hour)
	var delivered []StaleOwner
	wd.OnStale = func(so StaleOwner) { delivered = append(delivered, so) }
	stale := wd.Check()
	if len(stale) != 1 || stale[0].ID != r.ID() {
		t.Fatalf("Check = %+v, want exactly region %d", stale, r.ID())
	}
	if stale[0].Revoked {
		t.Fatal("revoked before ForceReleaseAfter")
	}
	if stale[0].Age < 2*time.Hour-time.Minute {
		t.Errorf("flagged age = %v, want ~2h", stale[0].Age)
	}
	if stale[0].QueueDepth != 1 {
		t.Errorf("QueueDepth = %d, want 1", stale[0].QueueDepth)
	}
	if !strings.Contains(stale[0].AcquireSite, "region_acquire_test.go") {
		t.Errorf("AcquireSite = %q, want the acquiring test frame", stale[0].AcquireSite)
	}
	if len(delivered) != 1 || wd.Flagged() != 1 {
		t.Errorf("OnStale delivered %d, Flagged %d, want 1/1", len(delivered), wd.Flagged())
	}

	clock = clock.Add(2 * time.Hour) // age ~4h, past ForceReleaseAfter
	stale = wd.Check()
	if len(stale) != 1 || !stale[0].Revoked {
		t.Fatalf("Check past ForceReleaseAfter = %+v, want a revoked flag", stale)
	}
	if wd.Revoked() != 1 {
		t.Fatalf("Revoked = %d, want 1", wd.Revoked())
	}
	// The parked waiter inherits the region and releases cleanly.
	if err := <-got; err != nil {
		t.Fatalf("waiter after revocation hand-off: %v", err)
	}
	// The torn-out token is dead.
	if err := own.Release(); !errors.Is(err, ErrOwnerRevoked) {
		t.Fatalf("release of revoked token: %v, want ErrOwnerRevoked", err)
	}
	c := a.Counters()
	if c.OwnerRevocations != 1 {
		t.Fatalf("OwnerRevocations = %d, want 1", c.OwnerRevocations)
	}
	if c.Acquires != c.Releases+c.OwnerRevocations {
		t.Fatalf("imbalance: acquires %d, releases %d + revocations %d",
			c.Acquires, c.Releases, c.OwnerRevocations)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}

// The watchdog's pending notebook follows releases: a legitimately
// released region is forgotten, a released-and-reacquired region starts
// a fresh clock, and Start/Stop run the revocation loop end to end.
func TestOwnerWatchdogFollowsReleases(t *testing.T) {
	a := NewArena()
	wd := NewOwnerWatchdog(a, time.Hour, nil)
	a.SetTracer(wd)
	defer a.SetTracer(nil)
	clock := time.Now()
	wd.now = func() time.Time { return clock }

	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Hour)
	if stale := wd.Check(); stale != nil {
		t.Fatalf("flagged a released region: %+v", stale)
	}
	// Reacquired: the clock restarts at the new acquire.
	own2, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	if stale := wd.Check(); stale != nil {
		t.Fatalf("flagged a fresh reacquisition: %+v", stale)
	}
	if err := own2.Release(); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}

	// Start/Stop: a wedged owner is revoked by the background loop.
	wd2 := NewOwnerWatchdog(a, time.Millisecond, nil)
	wd2.ForceReleaseAfter = 2 * time.Millisecond
	a.SetTracer(wd2)
	r2 := a.NewRegion()
	if _, err := r2.TryAcquire(); err != nil { // wedged: token abandoned
		t.Fatal(err)
	}
	wd2.Start(time.Millisecond)
	deadline := time.After(10 * time.Second)
	for wd2.Revoked() == 0 {
		select {
		case <-deadline:
			t.Fatal("background watchdog never revoked the wedged owner")
		case <-time.After(time.Millisecond):
		}
	}
	wd2.Stop()
	wd2.Stop() // idempotent
	if r2.Owned() {
		t.Fatal("region still owned after background revocation")
	}
	if err := r2.Delete(); err != nil {
		t.Fatal(err)
	}
}

// Mixed blocking and non-blocking contenders under the race detector:
// AcquireContext waiters, TryAcquire opportunists and short deadlines
// all storm one hub. At quiesce the token ledger balances exactly and
// no waiter slot leaks.
func TestMixedAcquireStress(t *testing.T) {
	const workers = 8
	iters := 150
	if testing.Short() {
		iters = 40
	}
	a := NewArena(WithMetrics())
	hub := a.NewRegion()
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 2654435761))
			for i := 0; i < iters; i++ {
				var tok *Owner
				var err error
				switch rng.Intn(3) {
				case 0:
					tok, err = hub.TryAcquire()
					if err != nil {
						if !errors.Is(err, ErrRegionOwned) {
							fail("TryAcquire: %v", err)
						}
						continue
					}
				case 1:
					tok, err = hub.AcquireContext(context.Background())
					if err != nil {
						fail("AcquireContext: %v", err)
						continue
					}
				default:
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(rng.Intn(200))*time.Microsecond)
					tok, err = hub.AcquireContext(ctx)
					cancel()
					if err != nil {
						if !errors.Is(err, ErrRegionOwned) ||
							(!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)) {
							fail("deadline AcquireContext: %v", err)
						}
						continue
					}
				}
				if _, err := TryAllocOwned[crossNode](tok); err != nil {
					fail("owned alloc: %v", err)
				}
				if err := tok.Release(); err != nil {
					fail("release: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	c := a.Counters()
	if c.Acquires == 0 || c.Acquires != c.Releases {
		t.Fatalf("token ledger imbalance: acquires %d releases %d", c.Acquires, c.Releases)
	}
	if got := a.AcquireWaiters(); got != 0 {
		t.Fatalf("leaked waiters on the shard gauge: %d", got)
	}
	if hub.Owned() {
		t.Fatal("hub still owned at quiesce")
	}
	if err := hub.Delete(); err != nil {
		t.Fatal(err)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit: %s", rep)
	}
}
