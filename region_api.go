package rcgo

import (
	"errors"
	"fmt"
)

// This file is the Go-native layer of the library: reference-counted
// regions for Go programs, with the paper's safety guarantee — deleting a
// region fails while external references to its objects remain — and the
// paper's cost-saving reference classes (same-region and parent
// references are never counted).
//
// Objects are allocated into a Region and addressed through Ref values.
// A Ref stored inside a region object must be written through the holder
// object's Set* methods so the runtime can maintain counts, mirroring the
// RC compiler's instrumentation of pointer assignments:
//
//	SetRef       unannotated pointer: full reference-count update
//	SetSame      sameregion pointer: checked, never counted
//	SetParent    parentptr pointer: checked, never counted
//
// References held in plain Go variables (locals) are the analogue of the
// paper's local variables: they are not counted; Pin/Unpin protects them
// across code that may delete regions.

// Arena is a reference-counted region heap for Go values.
type Arena struct {
	nextID   int64
	liveObjs int64
	trad     *Region
}

// Region is one region: objects allocated into it are freed together by
// Delete, which fails while external references remain.
type Region struct {
	arena    *Arena
	parent   *Region
	children int
	rc       int64
	pins     int64
	deleted  bool
	id       int64
	objs     int64
	// counted is the registry of counted (SetRef) slots held by this
	// region's objects; deletion walks it to release outbound references,
	// the analogue of the runtime's delete-time unscan.
	counted []releaser
}

// releaser lets a region release its objects' outbound counted references
// at delete time without knowing their element types.
type releaser interface {
	release(owner *Region)
}

// ErrRegionInUse is returned by Delete while external references or
// subregions remain.
var ErrRegionInUse = errors.New("rcgo: region has external references or subregions")

// ErrBadRef is returned (or panicked, from Must operations) when a
// checked store violates its annotation.
var ErrBadRef = errors.New("rcgo: reference violates its region annotation")

// NewArena creates an empty arena.
func NewArena() *Arena {
	a := &Arena{}
	a.trad = a.NewRegion()
	return a
}

// Traditional returns the arena's distinguished traditional region — the
// analogue of the paper's stack/globals/malloc-heap region. Objects with
// indefinite lifetime live here; it can never be deleted, and SetTrad
// verifies that a traditional slot only ever references it.
func (a *Arena) Traditional() *Region { return a.trad }

// NewRegion creates a new top-level region.
func (a *Arena) NewRegion() *Region {
	a.nextID++
	return &Region{arena: a, id: a.nextID}
}

// NewSubregion creates a region below r; it must be deleted before r.
func (r *Region) NewSubregion() *Region {
	if r.deleted {
		panic("rcgo: NewSubregion of deleted region")
	}
	s := r.arena.NewRegion()
	s.parent = r
	r.children++
	return s
}

// Obj is a region-allocated object holding a value of type T. The zero
// Obj is not valid; use Alloc.
type Obj[T any] struct {
	Value  T
	region *Region
}

// Ref is a counted or annotated slot referencing an Obj. Refs that live
// inside region objects must be updated through the holder's Set
// methods. A given slot should be used with one store flavour only
// (counted SetRef, or checked SetSame/SetParent), like a C field with a
// fixed annotation.
type Ref[T any] struct {
	target     *Obj[T]
	registered bool
}

func (r *Ref[T]) release(owner *Region) {
	if r.target != nil && r.target.region != owner {
		r.target.region.decRC()
	}
	r.target = nil
	r.registered = false
}

// Get returns the referenced object (nil if the Ref is null).
func (r *Ref[T]) Get() *Obj[T] { return r.target }

// Alloc allocates a zero T in region r.
func Alloc[T any](r *Region) *Obj[T] {
	if r.deleted {
		panic("rcgo: allocation in deleted region")
	}
	r.objs++
	r.arena.liveObjs++
	return &Obj[T]{region: r}
}

// Region returns the region holding the object.
func (o *Obj[T]) Region() *Region { return o.region }

// Use returns a checked pointer to the object's value, panicking if the
// object's region has been deleted. This is the dynamic analogue of the
// dangling-pointer accesses that region safety prevents: with correct use
// of the counted/checked stores it can never fire.
func (o *Obj[T]) Use() *T {
	if o.region.deleted {
		panic(fmt.Sprintf("rcgo: use of object in deleted region %d", o.region.id))
	}
	return &o.Value
}

// SetRef performs holder.slot = target with the full reference-count
// update of the paper's Figure 3(a): counts change only when the store
// creates or destroys an external reference.
func SetRef[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) {
	oldRegion := refRegion(slot.target)
	newRegion := refRegion(target)
	if oldRegion != newRegion {
		if oldRegion != nil && oldRegion != holder.region {
			oldRegion.decRC()
		}
		if newRegion != nil && newRegion != holder.region {
			newRegion.rc++
		}
	}
	slot.target = target
	if !slot.registered {
		slot.registered = true
		holder.region.counted = append(holder.region.counted, slot)
	}
}

// SetSame performs holder.slot = target for a sameregion slot: the target
// must be nil or in the holder's region. Never touches a count.
func SetSame[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	if target != nil && target.region != holder.region {
		return fmt.Errorf("%w: sameregion store of %v into %v",
			ErrBadRef, target.region.id, holder.region.id)
	}
	slot.target = target
	return nil
}

// SetTrad performs holder.slot = target for a traditional slot: the
// target must be nil or in the arena's traditional region. Never touches
// a count (the traditional region is immortal).
func SetTrad[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	if target != nil && target.region != holder.region.arena.trad {
		return fmt.Errorf("%w: traditional store of %v", ErrBadRef, target.region.id)
	}
	slot.target = target
	return nil
}

// SetParent performs holder.slot = target for a parentptr slot: the
// target must be nil or in an ancestor (or the same) region of the
// holder's. Never touches a count.
func SetParent[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	if target != nil && !target.region.isAncestorOf(holder.region) {
		return fmt.Errorf("%w: parentptr store of %v into %v",
			ErrBadRef, target.region.id, holder.region.id)
	}
	slot.target = target
	return nil
}

func refRegion[T any](o *Obj[T]) *Region {
	if o == nil {
		return nil
	}
	return o.region
}

func (r *Region) isAncestorOf(s *Region) bool {
	for ; s != nil; s = s.parent {
		if s == r {
			return true
		}
	}
	return false
}

func (r *Region) decRC() {
	r.rc--
	if r.deleted && r.rc == 0 && r.pins == 0 && r.children == 0 {
		r.reclaim()
	}
}

// Pin registers a local (Go-variable) reference to an object's region for
// the duration of code that may delete regions, mirroring the paper's
// handling of live local variables at deletes-calls. Returns an Unpin
// function.
func Pin[T any](o *Obj[T]) (unpin func()) {
	if o == nil {
		return func() {}
	}
	r := o.region
	r.rc++
	r.pins++
	done := false
	return func() {
		if done {
			return
		}
		done = true
		r.pins--
		r.decRC()
	}
}

// RC returns the current external reference count (including pins).
func (r *Region) RC() int64 { return r.rc }

// Deleted reports whether the region has been reclaimed.
func (r *Region) Deleted() bool { return r.deleted }

// Objects returns the number of live objects in the region.
func (r *Region) Objects() int64 { return r.objs }

// Delete deletes the region and all its objects. It returns
// ErrRegionInUse while external references or subregions remain.
func (r *Region) Delete() error {
	if r == r.arena.trad {
		return errors.New("rcgo: cannot delete the traditional region")
	}
	if r.deleted {
		return errors.New("rcgo: double delete")
	}
	if r.rc != 0 || r.children > 0 {
		return fmt.Errorf("%w (rc=%d, subregions=%d)", ErrRegionInUse, r.rc, r.children)
	}
	r.reclaim()
	return nil
}

// DeleteDeferred marks the region for implicit deletion when it becomes
// unreferenced (the paper's third safety option, with semantics close to
// garbage collection).
func (r *Region) DeleteDeferred() {
	if r.deleted {
		return
	}
	if r.rc == 0 && r.pins == 0 && r.children == 0 {
		r.reclaim()
		return
	}
	r.deleted = true // zombie: reclaim on last release
}

func (r *Region) reclaim() {
	r.deleted = true
	r.arena.liveObjs -= r.objs
	r.objs = 0
	// The delete-time unscan: release outbound counted references so the
	// targets' counts drop (and deferred deletions may cascade).
	slots := r.counted
	r.counted = nil
	for _, s := range slots {
		s.release(r)
	}
	if r.parent != nil {
		r.parent.children--
		if r.parent.deleted && r.parent.rc == 0 && r.parent.pins == 0 && r.parent.children == 0 {
			r.parent.reclaim()
		}
	}
}

// LiveObjects returns the number of live objects across the arena.
func (a *Arena) LiveObjects() int64 { return a.liveObjs }
