package rcgo

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// This file is the Go-native layer of the library: reference-counted
// regions for Go programs, with the paper's safety guarantee — deleting a
// region fails while external references to its objects remain — and the
// paper's cost-saving reference classes (same-region, traditional and
// parent references are never counted).
//
// Objects are allocated into a Region and addressed through Ref values.
// A Ref stored inside a region object must be written through the holder
// object's Set* methods (region_store.go) so the runtime can maintain
// counts, mirroring the RC compiler's instrumentation of pointer
// assignments. References held in plain Go variables (locals) are the
// analogue of the paper's local variables: they are not counted;
// Pin/Unpin protects them across code that may delete regions.
//
// The runtime is safe for concurrent use by multiple goroutines. The
// concurrency design (see DESIGN.md §"Concurrent Go-native runtime"):
//
//   - Every counter (rc, pins, objs, children, the arena's live-object
//     total) is an atomic. External-reference creation uses an
//     increment-then-validate protocol against a per-region state machine
//     (alive → dying → dead, or alive → zombie → dead), so a reference
//     can never be created on a region that a concurrent Delete has
//     reclaimed, and a Delete can never succeed while a reference is
//     being created.
//   - Lifecycle decisions (Delete, DeleteDeferred, the zombie drain,
//     Alloc and NewSubregion admission) serialize on a small per-region
//     mutex. Store fast paths never take it.
//   - Counted slots register in a mutex-sharded per-region registry
//     (region_store.go), keyed by slot address, so concurrent SetRefs
//     into one region rarely share a lock.
//   - Annotated stores (SetSame, SetTrad, SetParent) and Obj.Use are
//     entirely lock-free and write no shared memory: they read immutable
//     region identity/ancestry plus the region state word, then write
//     only the holder's own slot. They scale linearly with GOMAXPROCS
//     (BenchmarkParallelSetSame).
//
// Concurrent Set* calls on the *same* slot are linearized by the runtime
// (the slot value is atomic and counted stores serialize on the slot's
// registry shard), but as in any Go program, higher-level invariants
// across multiple slots are the caller's responsibility.

// Region lifecycle states. All transitions happen under Region.mu; reads
// are lock-free. stateDying is a transient window during which Delete or
// DeleteDeferred holds mu and is deciding: observers wait it out
// (settled) rather than treating it as deleted, because the delete may
// still fail with ErrRegionInUse. stateOwned (region_owner.go) is a
// settled state like zombie: shared-path operations fail fast with
// ErrRegionOwned rather than waiting, because ownership lasts as long
// as the token holder wants it to.
const (
	stateAlive  int32 = iota
	stateDying        // transient: a delete holds mu and is deciding
	stateZombie       // DeleteDeferred: reclaim when references drain
	stateDead         // reclaimed
	stateOwned        // exclusively owned via an Owner token (region_owner.go)
)

// Arena is a reference-counted region heap for Go values, created by
// NewArena (region_fabric.go) and internally sharded: regions hash
// across the fabric's shards, each of which owns an id-sequence
// segment, a registry segment, and its slice of every arena-wide
// total. All methods are safe for concurrent use, and every reader
// (Stats, Audit, EachRegion, the debug inspector) aggregates across
// shards so the fabric is invisible to callers.
type Arena struct {
	// shards is the fabric (region_fabric.go); immutable after
	// construction. shardMask = len(shards)-1 (the count is a power of
	// two).
	shards    []arenaShard
	shardMask uint64

	// metrics gates the cumulative op counters (region_metrics.go);
	// advisor gates the annotation advisor's call-site profiler
	// (region_advisor.go); tracer delivers lifecycle events
	// (region_trace.go). All are nil until enabled and cost the fast
	// paths one load + branch.
	metrics atomic.Pointer[arenaMetrics]
	advisor atomic.Pointer[arenaAdvisor]
	tracer  atomic.Pointer[tracerBox]

	// allocSlow disables the allocation fast path (region_alloccache.go)
	// for regions created after WithAllocCache(false) / the deprecated
	// SetAllocCache(false) — the A/B ablation knob. Snapshotted per
	// region at creation so the hot path never chases a pointer through
	// the arena.
	allocSlow atomic.Bool

	// backing is the off-heap page store behind slab-backed object
	// chunks (region_slab.go); nil — the default — means every chunk is
	// an ordinary GC-heap allocation. Immutable after construction
	// (WithOffHeapSlabs / WithBackingStore), touched only on the chunk
	// refill edge and at reclaim's page return, never per object.
	backing BackingStore

	trad *Region
}

// Region is one region: objects allocated into it are freed together by
// Delete, which fails while external references remain. All methods are
// safe for concurrent use.
type Region struct {
	arena *Arena
	// shard is the fabric shard the region was assigned to at creation
	// (immutable): the shard whose id sequence minted r.id and whose
	// counters carry this region's share of the arena totals.
	shard  *arenaShard
	parent *Region // immutable after creation
	id     int64
	// metrics caches arena.metrics so the store fast paths gate their
	// counting on a load from this (already hot, effectively read-only)
	// cache line instead of a dependent load through the arena. Set at
	// creation and by EnableMetrics' registry walk; nil = not counting.
	// advisor is the same cached-gate pattern for the annotation
	// advisor (region_advisor.go); nil = not advising.
	metrics atomic.Pointer[arenaMetrics]
	advisor atomic.Pointer[arenaAdvisor]

	// acache is the lazily-created allocation delta cache
	// (region_alloccache.go); allocSlow (immutable after creation)
	// routes TryAlloc to the pre-cache slow path instead.
	acache    atomic.Pointer[allocCache]
	allocSlow bool

	// mu serializes lifecycle decisions. The counters stay atomic so the
	// reference fast paths (incRC/decRC) and stat reads never block on it.
	mu       sync.Mutex
	state    atomic.Int32
	rc       atomic.Int64 // external counted references, including pins
	pins     atomic.Int64 // the pin subset of rc, for stats
	children atomic.Int64
	objs     atomic.Int64

	// owner is the region's exclusive-ownership token while stateOwned
	// (region_owner.go); nil otherwise. Set and cleared under mu at the
	// same program points as the alive ⇄ owned transitions, read
	// atomically by the auditor's owner-linkage check.
	owner atomic.Pointer[Owner]

	// slots is the sharded registry of counted (SetRef) slots held by
	// this region's objects; deletion drains it to release outbound
	// references, the analogue of the runtime's delete-time unscan.
	slots [slotShards]slotShard

	// slabPages tracks the off-heap store pages this region's slab
	// chunks are carved from (region_slab.go): carve appends, reclaim
	// closes the list and returns every page to the store after the
	// writer gate drains. Unused (and empty) without a backing store.
	slabPages slabPageList

	// chunkPark parks this region's partially-used allocation chunks
	// between allocations (region_alloccache.go): a strong-reference
	// level-one cache in front of the per-type sync.Pools, shared in
	// place through each chunk's atomic cursor. Per-region (it used to
	// be arena-wide) so concurrent single-type regions never displace
	// each other's chunks; reclaim returns parked chunks to their pools.
	chunkPark [chunkParkSlots]atomic.Pointer[chunkBox]

	// waitq is the FIFO queue of parked AcquireContext contenders
	// (region_owner.go); guarded by mu, and non-empty only while the
	// region is stateOwned — hand-off pops the head, cancellation
	// splices out the quitter, Owner.Delete fails the whole queue.
	// acquiredAt/acquirePC/acquirePCN (also mu-guarded) record when and
	// where the current token was minted, for the OwnerWatchdog's
	// stale-owner reports and the /owners inspector.
	waitq      []*acquireWaiter
	acquiredAt time.Time
	acquirePC  [acquirePCDepth]uintptr
	acquirePCN int
	// contendedWaits counts waiters ever parked on this region
	// (cumulative, monotone), read lock-free by the /owners
	// top-contended table.
	contendedWaits atomic.Int64
}

// ErrRegionInUse is returned by Delete while external references or
// subregions remain.
var ErrRegionInUse = errors.New("rcgo: region has external references or subregions")

// ErrRegionDeleted is returned when an operation targets a region that
// has been deleted or marked for deferred deletion: allocation in it,
// creating a subregion of it, pinning it, deleting it again, or a Set*
// store whose holder or target lives in it. A deferred-deleted (zombie)
// region rejects new references instead of silently having its reclaim
// postponed.
var ErrRegionDeleted = errors.New("rcgo: region already deleted")

// ErrBadRef is returned (or panicked, from the MustSet* operations) when
// a checked store violates its annotation.
var ErrBadRef = errors.New("rcgo: reference violates its region annotation")

// Traditional returns the arena's distinguished traditional region — the
// analogue of the paper's stack/globals/malloc-heap region. Objects with
// indefinite lifetime live here; it can never be deleted, and SetTrad
// verifies that a traditional slot only ever references it.
func (a *Arena) Traditional() *Region { return a.trad }

// NewRegion creates a new top-level region.
func (a *Arena) NewRegion() *Region { return a.newRegion(nil) }

// ID returns the region's arena-unique id — the same id the tracer,
// the hierarchy inspector and the blocked-deleters report use, so a
// region found in a debug report can be correlated with the handle.
//
// Ids are shard-encoded: the low bits carry the fabric shard the region
// was assigned to at creation (recoverable with Arena.RegionShard), the
// high bits a per-shard sequence. The encoding makes an id globally
// unique within its arena and stable for the region's whole life —
// regions never migrate between shards — but ids are NOT dense or
// globally creation-ordered: two regions created back to back on
// different shards can have ids far apart, in either order.
func (r *Region) ID() int64 { return r.id }

// newRegion creates and publishes a region below parent (nil for
// top-level). The region is assigned to a fabric shard by hashing its
// own address (region_fabric.go), takes its id from that shard's
// sequence, and counts toward that shard's totals for life.
// Registration happens after the parent pointer is set so the debug
// inspector never observes a half-built region.
func (a *Arena) newRegion(parent *Region) *Region {
	r := &Region{arena: a, parent: parent, allocSlow: a.allocSlow.Load()}
	idx := a.shardIndexFor(unsafe.Pointer(r))
	sh := &a.shards[idx]
	r.shard = sh
	r.id = sh.nextSeq.Add(1)<<shardIDBits | int64(idx)
	sh.liveRegions.Add(1)
	a.register(r)
	// Arm the per-region metrics gate after registering: either this load
	// sees the enabled pointer, or EnableMetrics' registry walk (which
	// CASes a.metrics first) sees the registered region. Never both miss.
	// The advisor gate follows the identical protocol against
	// EnableAdvisor's walk.
	if m := a.metrics.Load(); m != nil {
		r.metrics.Store(m)
	}
	if ad := a.advisor.Load(); ad != nil {
		r.advisor.Store(ad)
	}
	a.traceEvent(TraceRegionCreated, r)
	return r
}

// NewSubregion creates a region below r; it must be deleted before r.
// It panics if r has been deleted; use TryNewSubregion where a
// concurrent delete may race.
func (r *Region) NewSubregion() *Region {
	s, err := r.TryNewSubregion()
	if err != nil {
		panic(err)
	}
	return s
}

// TryNewSubregion creates a region below r, or returns ErrRegionDeleted
// if r has been deleted (ErrRegionOwned if it is exclusively owned —
// the owner alone decides the region's lifetime obligations).
func (r *Region) TryNewSubregion() (*Region, error) {
	r.mu.Lock()
	switch r.state.Load() {
	case stateAlive:
	case stateOwned:
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: NewSubregion of region %d", ErrRegionOwned, r.id)
	default:
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: NewSubregion of region %d", ErrRegionDeleted, r.id)
	}
	// Registered before mu is released, so a racing Delete of r sees the
	// child and fails with ErrRegionInUse.
	r.children.Add(1)
	r.mu.Unlock()
	return r.arena.newRegion(r), nil
}

// Obj is a region-allocated object holding a value of type T. The zero
// Obj is not valid; use Alloc.
type Obj[T any] struct {
	Value  T
	region *Region
}

// Alloc allocates a zero T in region r. It panics if r has been deleted;
// use TryAlloc where a concurrent delete may race.
func Alloc[T any](r *Region) *Obj[T] {
	o, err := TryAlloc[T](r)
	if err != nil {
		panic(err)
	}
	return o
}

// TryAlloc allocates a zero T in region r, or returns ErrRegionDeleted
// if r has been deleted.
//
// Fast path (region_alloccache.go): the object comes out of a pooled
// per-type chunk, and admission is the same increment-then-validate
// protocol incRC uses — publish a +1 delta on a shard-local cache line,
// then check the region state. If the check observes stateAlive the
// allocation is admitted (that load is its linearization point: a delete
// committing afterwards simply owns the object, exactly as if it had
// raced the old mutex-admitted path); any other settled state withdraws
// the delta and fails. No lock is taken and no arena-shared cache line
// is touched except by the occasional batched flush.
func TryAlloc[T any](r *Region) (*Obj[T], error) {
	if err := fpAllocAdmission.Eval(); err != nil {
		return nil, fmt.Errorf("%w: allocation in region %d", err, r.id)
	}
	if r.allocSlow {
		return tryAllocSlow[T](r)
	}
	o, err := newChunkedObj[T](r)
	if err != nil {
		return nil, err
	}
	sh := r.allocCache().shard(unsafe.Pointer(o))
	for {
		n := sh.pending.Add(1)
		switch r.state.Load() {
		case stateAlive:
			if n >= allocFlushThreshold {
				r.tryFlushAllocPending()
			}
			if c := r.counters(); c != nil {
				c.allocs.Add(1)
			}
			return o, nil
		case stateDying:
			// A delete holds mu and is deciding; it may still fail, so
			// withdraw the provisional delta and re-decide once settled.
			sh.pending.Add(-1)
			runtime.Gosched()
		case stateOwned:
			sh.pending.Add(-1)
			return nil, fmt.Errorf("%w: allocation in region %d", ErrRegionOwned, r.id)
		default:
			sh.pending.Add(-1)
			return nil, fmt.Errorf("%w: allocation in region %d", ErrRegionDeleted, r.id)
		}
	}
}

// tryAllocSlow is the pre-cache allocation path, kept as the
// SetAllocCache(false) ablation baseline: per-object lifecycle mutex
// plus direct updates of the shared counters.
func tryAllocSlow[T any](r *Region) (*Obj[T], error) {
	o := &Obj[T]{region: r}
	r.mu.Lock()
	switch r.state.Load() {
	case stateAlive:
	case stateOwned:
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: allocation in region %d", ErrRegionOwned, r.id)
	default:
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: allocation in region %d", ErrRegionDeleted, r.id)
	}
	// Under mu: a racing Delete either admits this object before its
	// decision (and its reclaim accounts for it) or has already marked
	// the region and we fail above. Object accounting stays exact.
	r.objs.Add(1)
	r.shard.liveObjs.Add(1)
	r.mu.Unlock()
	if c := r.counters(); c != nil {
		c.allocs.Add(1)
	}
	return o, nil
}

// Region returns the region holding the object.
func (o *Obj[T]) Region() *Region { return o.region }

// Use returns a checked pointer to the object's value, panicking if the
// object's region has been reclaimed. This is the dynamic analogue of the
// dangling-pointer accesses that region safety prevents: with correct use
// of the counted/checked stores it can never fire. A deferred-deleted
// region's objects remain usable while existing references keep it from
// reclaim (the paper's GC-like third deletion policy) — only *new*
// references to it are rejected.
func (o *Obj[T]) Use() *T {
	if o.region.settled() == stateDead {
		panic(fmt.Sprintf("rcgo: use of object in deleted region %d", o.region.id))
	}
	return &o.Value
}

// settled returns the region's state, waiting out the transient dying
// window during which a concurrent delete holds mu and is deciding (the
// delete may still fail, so dying must not be reported as deleted).
func (r *Region) settled() int32 {
	for {
		s := r.state.Load()
		if s != stateDying {
			return s
		}
		runtime.Gosched()
	}
}

// incRC creates one external reference to r, failing if r has been
// deleted or deferred-deleted. The increment-then-validate protocol
// makes it linearizable against Delete: the increment is published
// first, then the state is checked — so either a concurrent Delete sees
// the reference and fails with ErrRegionInUse, or it has already
// committed and this call observes that and rolls back.
func (r *Region) incRC() error {
	for {
		r.rc.Add(1)
		// Failpoint inside the increment-then-validate window: an
		// injected error is a reference creation failing mid-protocol and
		// must withdraw its increment (and re-offer a drain the transient
		// increment may have suppressed), exactly like the zombie path.
		if err := fpIncRCValidate.Eval(); err != nil {
			r.rc.Add(-1)
			r.maybeDrain()
			return fmt.Errorf("%w: new reference to region %d", err, r.id)
		}
		switch r.state.Load() {
		case stateAlive:
			if c := r.counters(); c != nil {
				c.rcIncrements.Add(1)
			}
			return nil
		case stateDying:
			// A delete is deciding; our increment may have spoiled it
			// (fine: it fails ErrRegionInUse) or arrived after its rc
			// read (then it commits). Either way, withdraw and re-decide
			// once the state settles.
			r.rc.Add(-1)
			runtime.Gosched()
		case stateOwned:
			// New references to an owned region are the owner's business;
			// the transient increment may make an Owner.Delete fail with
			// ErrRegionInUse, which its callers retry exactly like the
			// dying race above. Pre-existing references stay free to
			// decRC while owned.
			r.rc.Add(-1)
			return fmt.Errorf("%w: new reference to region %d", ErrRegionOwned, r.id)
		default: // zombie or dead: no new references
			r.rc.Add(-1)
			r.maybeDrain()
			return fmt.Errorf("%w: new reference to region %d", ErrRegionDeleted, r.id)
		}
	}
}

// decRC releases one external reference, reclaiming a drained
// deferred-deleted region. Every decRC pairs a committed incRC, so the
// increment/decrement counters converge once references drain.
func (r *Region) decRC() {
	if c := r.counters(); c != nil {
		c.rcDecrements.Add(1)
	}
	if r.rc.Add(-1) == 0 {
		r.maybeDrain()
	}
}

// maybeDrain reclaims a zombie region whose references and subregions
// have drained. The zombie→dead transition is made exactly once, under
// mu, after re-validating the counts.
func (r *Region) maybeDrain() { r.drain(false) }

// drain is maybeDrain's implementation; it reports whether this call
// made the zombie→dead transition. force bypasses the zombie.drain
// failpoint: the recovery paths (Arena.SweepZombies, the watchdog) must
// be able to heal a drain the failpoint itself suppressed.
func (r *Region) drain(force bool) bool {
	if r.state.Load() != stateZombie {
		return false
	}
	// Failpoint on the drain edge: an injected error drops this drain
	// attempt on the floor — a lost wakeup, the stuck-zombie condition
	// the watchdog exists to detect and heal.
	if !force {
		if err := fpZombieDrain.Eval(); err != nil {
			return false
		}
	}
	r.mu.Lock()
	if r.state.Load() == stateZombie && r.rc.Load() == 0 && r.children.Load() == 0 {
		r.state.Store(stateDead)
		r.shard.deferredRegions.Add(-1)
		r.mu.Unlock()
		r.reclaim()
		return true
	}
	r.mu.Unlock()
	return false
}

// Pin registers a local (Go-variable) reference to an object's region for
// the duration of code that may delete regions, mirroring the paper's
// handling of live local variables at deletes-calls. Returns an Unpin
// function (idempotent, safe to call from any goroutine). Pin panics if
// the region has already been deleted; use TryPin where a concurrent
// delete may race.
func Pin[T any](o *Obj[T]) (unpin func()) {
	unpin, err := TryPin(o)
	if err != nil {
		panic(err)
	}
	return unpin
}

// TryPin is Pin returning ErrRegionDeleted instead of panicking when the
// object's region has been deleted.
func TryPin[T any](o *Obj[T]) (unpin func(), err error) {
	if o == nil {
		return func() {}, nil
	}
	r := o.region
	if err := r.incRC(); err != nil {
		return nil, err
	}
	r.pins.Add(1)
	if c := r.counters(); c != nil {
		c.pinOps.Add(1)
	}
	var done atomic.Bool
	return func() {
		if done.Swap(true) {
			return
		}
		r.pins.Add(-1)
		r.decRC()
	}, nil
}

// Delete deletes the region and all its objects. It returns
// ErrRegionInUse while external references or subregions remain, and
// ErrRegionDeleted if the region was already deleted. Exactly one of any
// set of concurrent Delete calls can succeed.
func (r *Region) Delete() error {
	if r == r.arena.trad {
		return errors.New("rcgo: cannot delete the traditional region")
	}
	r.mu.Lock()
	switch r.state.Load() {
	case stateAlive:
	case stateOwned:
		// Only the token may delete an owned region (Owner.Delete).
		r.mu.Unlock()
		return fmt.Errorf("%w: delete of region %d", ErrRegionOwned, r.id)
	default:
		r.mu.Unlock()
		return fmt.Errorf("%w: double delete of region %d", ErrRegionDeleted, r.id)
	}
	if n := r.children.Load(); n > 0 {
		r.mu.Unlock()
		r.noteDeleteBlocked()
		return fmt.Errorf("%w (subregions=%d)", ErrRegionInUse, n)
	}
	// Close the gate: once dying is visible, incRC withdraws and waits,
	// so an rc of zero observed below cannot grow behind our back.
	r.state.Store(stateDying)
	// Failpoint inside the dying window: an injected error aborts the
	// delete with the gate restored (no decision was made); a delay or
	// yield holds the window open against racing incRCs.
	if err := fpDeleteDying.Eval(); err != nil {
		r.state.Store(stateAlive)
		r.mu.Unlock()
		return fmt.Errorf("%w: delete of region %d", err, r.id)
	}
	if n := r.rc.Load(); n != 0 {
		r.state.Store(stateAlive)
		r.mu.Unlock()
		r.noteDeleteBlocked()
		return fmt.Errorf("%w (rc=%d)", ErrRegionInUse, n)
	}
	r.state.Store(stateDead)
	r.shard.liveRegions.Add(-1)
	r.mu.Unlock()
	if c := r.counters(); c != nil {
		c.deletes.Add(1)
	}
	r.arena.traceEvent(TraceRegionDeleted, r)
	r.reclaim()
	return nil
}

// noteDeleteBlocked records an explicit Delete that failed with
// ErrRegionInUse; the debug inspector's blocked-deleters report names
// the slots responsible.
func (r *Region) noteDeleteBlocked() {
	if c := r.counters(); c != nil {
		c.deletesBlocked.Add(1)
	}
	r.arena.traceEvent(TraceDeleteBlocked, r)
}

// DeleteDeferred marks the region for implicit deletion when it becomes
// unreferenced (the paper's third safety option, with semantics close to
// garbage collection). A deferred-deleted region immediately rejects new
// allocations, subregions, pins and inbound references (so its reclaim
// cannot be postponed indefinitely); clearing its outbound counted slots
// with nil stores remains allowed, which is how cross-region cycles are
// broken. No-op on the traditional region, one already deleted, or one
// that is exclusively owned (the owner decides its end through the
// token — Owner.Release then DeleteDeferred, or Owner.Delete).
func (r *Region) DeleteDeferred() {
	if r == r.arena.trad {
		return
	}
	r.mu.Lock()
	if r.state.Load() != stateAlive {
		r.mu.Unlock()
		return
	}
	r.state.Store(stateDying)
	// Same dying-window failpoint as Delete, but DeleteDeferred has no
	// error return: only the perturbing actions (delay/yield/hook) apply.
	fpDeleteDying.Perturb()
	// Flush the batched allocation deltas at the deferral point: a
	// zombie keeps its objects live until reclaim, so its objs count
	// must be settled for Stats readers and the auditor. (The
	// immediate-reclaim branch below relies on reclaim's own drain.)
	r.flushAllocPendingLocked()
	if r.rc.Load() == 0 && r.children.Load() == 0 {
		r.state.Store(stateDead)
		r.shard.liveRegions.Add(-1)
		r.mu.Unlock()
		if c := r.counters(); c != nil {
			c.deferredDeletes.Add(1)
		}
		r.arena.traceEvent(TraceRegionDeleted, r)
		r.reclaim()
		return
	}
	r.state.Store(stateZombie)
	r.shard.liveRegions.Add(-1)
	r.shard.deferredRegions.Add(1)
	r.mu.Unlock()
	if c := r.counters(); c != nil {
		c.deferredDeletes.Add(1)
	}
	r.arena.traceEvent(TraceRegionDeferred, r)
}

// reclaim frees the region's bookkeeping. The caller has already made
// the (exactly-once) transition to stateDead, so no new objects, slots
// or references can appear; concurrent stores that raced past the state
// check finished under their shard lock before the drain takes it.
func (r *Region) reclaim() {
	// Drain the batched allocation deltas before the final swap: every
	// admitted object's delta landed before the dead state was stored
	// (the admission check saw stateAlive first — see the seq-cst
	// argument in region_alloccache.go), so crediting the remainder here
	// and then swapping objs removes exactly this region's contribution
	// from the arena total.
	r.drainAllocPendingReclaim()
	r.shard.liveObjs.Add(-r.objs.Swap(0))
	// Return parked allocation chunks to their per-type pools: the park
	// is a strong reference, and a dead region must not retain chunk
	// capacity other regions could reuse. A chunk an allocator raced out
	// of the park is already on its way back to the pool or exhausted.
	for i := range r.chunkPark {
		if b := r.chunkPark[i].Swap(nil); b != nil {
			b.c.release()
		}
	}
	// Return the region's slab pages to the backing store
	// (region_slab.go): the paper's reclaim-at-delete, for real — each
	// page is handed back for immediate reuse once its chunk's writer
	// gate drains, and no GC cycle is involved.
	r.releaseSlabPages()
	// The delete-time unscan: collect the registered slots shard by
	// shard, then release the outbound counted references so the
	// targets' counts drop (and deferred deletions may cascade). Releases
	// run outside the shard locks: a release can reclaim its target,
	// which takes that region's locks in turn.
	var slots []releaser
	for i := range r.slots {
		sh := &r.slots[i]
		sh.mu.Lock()
		slots = append(slots, sh.slots...)
		sh.slots = nil
		sh.mu.Unlock()
	}
	for _, s := range slots {
		s.release(r)
	}
	r.arena.unregister(r.id)
	if c := r.counters(); c != nil {
		c.reclaims.Add(1)
	}
	r.arena.traceEvent(TraceRegionReclaimed, r)
	if p := r.parent; p != nil {
		p.children.Add(-1)
		p.maybeDrain()
	}
}
