package rcgo

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rcgo/internal/failpoint"
)

type cachePayload struct{ a, b, c int64 }

// Below the flush threshold, allocation deltas stay parked in the shard
// cache: objs is stale, Objects() folds the pending deltas in, and
// Stats is a flush point that settles the real counter.
func TestAllocCacheFlushOnStats(t *testing.T) {
	a := NewArena()
	a.EnableMetrics()
	r := a.NewRegion()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := TryAlloc[cachePayload](r); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.objs.Load(); got != 0 {
		t.Fatalf("objs = %d before any flush point, want 0 (deltas parked)", got)
	}
	if got := r.Objects(); got != n {
		t.Fatalf("Objects() = %d, want %d (pending deltas folded in)", got, n)
	}
	if got := r.Stats().Objects; got != n {
		t.Fatalf("Stats().Objects = %d, want %d", got, n)
	}
	if got := r.objs.Load(); got != n {
		t.Fatalf("objs = %d after the Stats flush, want %d", got, n)
	}
	if got := a.Counters().AllocFlushes; got == 0 {
		t.Fatal("the Stats flush was not counted")
	}
}

// A long enough allocation run must cross the per-shard threshold and
// flush without any explicit flush point being exercised.
func TestAllocCacheThresholdFlush(t *testing.T) {
	a := NewArena()
	a.EnableMetrics()
	r := a.NewRegion()
	const n = 2 * allocShards * allocFlushThreshold
	for i := 0; i < n; i++ {
		if _, err := TryAlloc[cachePayload](r); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Counters().AllocFlushes; got == 0 {
		t.Fatalf("no threshold flush over %d allocations", n)
	}
	if got := r.Objects(); got != n {
		t.Fatalf("Objects() = %d, want %d", got, n)
	}
}

// Delete must account for every parked delta: reclaim drains the
// shards, so the arena total returns to zero exactly.
func TestAllocCacheFlushOnDelete(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	for i := 0; i < 20; i++ {
		if _, err := TryAlloc[cachePayload](r); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d after delete, want 0", got)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit after delete:\n%s", rep)
	}
}

// DeleteDeferred flushes at the deferral point: a zombie's objs counter
// is settled (its objects stay live until reclaim), and the eventual
// drain returns the arena to zero.
func TestAllocCacheFlushOnDeleteDeferred(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	o, err := TryAlloc[cachePayload](r)
	if err != nil {
		t.Fatal(err)
	}
	const n = 34
	for i := 1; i < n; i++ {
		if _, err := TryAlloc[cachePayload](r); err != nil {
			t.Fatal(err)
		}
	}
	unpin, err := TryPin(o)
	if err != nil {
		t.Fatal(err)
	}
	r.DeleteDeferred()
	if !r.Deferred() {
		t.Fatal("pinned region did not become a zombie")
	}
	if got := r.objs.Load(); got != n {
		t.Fatalf("zombie objs = %d, want %d (deltas flushed at the deferral point)", got, n)
	}
	if got := r.Stats().Objects; got != n {
		t.Fatalf("zombie Stats().Objects = %d, want %d", got, n)
	}
	unpin()
	if !r.Stats().Reclaimed {
		t.Fatal("zombie did not reclaim after the last unpin")
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d after reclaim, want 0", got)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit after reclaim:\n%s", rep)
	}
}

// Randomized churn: regions created, filled and deleted in arbitrary
// order must leave the arena total equal to the surviving regions' sum,
// the cumulative Allocs counter equal to the exact success count, and
// the audit clean — no delta may drift across any flush path.
func TestAllocCacheAuditAfterChurn(t *testing.T) {
	a := NewArena()
	a.EnableMetrics()
	rng := rand.New(rand.NewSource(1))
	var live []*Region
	var want, total int64
	for round := 0; round < 120; round++ {
		r := a.NewRegion()
		n := int64(rng.Intn(150))
		for i := int64(0); i < n; i++ {
			if _, err := TryAlloc[cachePayload](r); err != nil {
				t.Fatal(err)
			}
		}
		total += n
		if rng.Intn(2) == 0 {
			if err := r.Delete(); err != nil {
				t.Fatal(err)
			}
		} else {
			live = append(live, r)
			want += n
		}
	}
	if got := a.LiveObjects(); got != want {
		t.Fatalf("LiveObjects = %d, want %d", got, want)
	}
	if got := a.Counters().Allocs; got != total {
		t.Fatalf("Counters().Allocs = %d, want %d (objs drift through the cache)", got, total)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit after churn:\n%s", rep)
	}
	for _, r := range live {
		if err := r.Delete(); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d after draining, want 0", got)
	}
}

// Concurrent chunk refills and delta publishes racing region deletion:
// run under -race, exact at quiesce. The refill failpoint yields inside
// the refill and flush windows to widen the races.
func TestAllocCacheConcurrentRefillVsDelete(t *testing.T) {
	if err := failpoint.Enable("rcgo/alloc.refill",
		failpoint.Rule{Action: failpoint.ActionYield, Num: 1, Den: 2, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()

	a := NewArena()
	var cur atomic.Pointer[Region]
	cur.Store(a.NewRegion())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := TryAlloc[cachePayload](cur.Load()); err != nil && !errors.Is(err, ErrRegionDeleted) {
					t.Errorf("TryAlloc: %v", err)
					return
				}
			}
		}()
	}
	swaps := 200
	if testing.Short() {
		swaps = 50
	}
	for i := 0; i < swaps; i++ {
		old := cur.Swap(a.NewRegion())
		old.DeleteDeferred()
	}
	close(stop)
	wg.Wait()
	failpoint.DisableAll()
	cur.Load().DeleteDeferred()
	a.SweepZombies()
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d at quiesce, want 0", got)
	}
	if got := a.DeferredRegions(); got != 0 {
		t.Fatalf("DeferredRegions = %d at quiesce, want 0", got)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit at quiesce:\n%s", rep)
	}
}

// SetAllocCache(false) routes new regions down the pre-cache slow path:
// counters update directly, no delta cache is built, and the two paths
// keep identical accounting within one arena.
func TestAllocCacheDisabled(t *testing.T) {
	a := NewArena()
	a.SetAllocCache(false)
	slow := a.NewRegion()
	for i := 0; i < 10; i++ {
		if _, err := TryAlloc[cachePayload](slow); err != nil {
			t.Fatal(err)
		}
	}
	if got := slow.objs.Load(); got != 10 {
		t.Fatalf("slow path objs = %d, want 10 (counted directly)", got)
	}
	if slow.acache.Load() != nil {
		t.Fatal("slow path built a delta cache")
	}
	a.SetAllocCache(true)
	fast := a.NewRegion()
	if _, err := TryAlloc[cachePayload](fast); err != nil {
		t.Fatal(err)
	}
	if got := fast.objs.Load(); got != 0 {
		t.Fatalf("fast path objs = %d before a flush point, want 0", got)
	}
	if got := a.LiveObjects(); got != 11 {
		t.Fatalf("LiveObjects = %d across both paths, want 11", got)
	}
	if err := slow.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := fast.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d after deletes, want 0", got)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit:\n%s", rep)
	}
}

// A refused chunk refill (the rcgo/alloc.refill failpoint) surfaces
// before the object is counted: nothing unwinds, nothing leaks into the
// arena totals, and the next attempt succeeds once disarmed.
func TestAllocRefillFailpoint(t *testing.T) {
	// A type unique to this test, so its chunk pool is guaranteed empty
	// and the first allocation must refill.
	type refillProbe struct{ x [48]byte }
	a := NewArena()
	r := a.NewRegion()
	if err := failpoint.Enable("rcgo/alloc.refill", failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	_, err := TryAlloc[refillProbe](r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("refused refill returned %v, want ErrInjected", err)
	}
	failpoint.DisableAll()
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("refused refill counted an object: LiveObjects = %d", got)
	}
	if _, err := TryAlloc[refillProbe](r); err != nil {
		t.Fatalf("disarmed allocation: %v", err)
	}
	if got := r.Objects(); got != 1 {
		t.Fatalf("Objects() = %d, want 1", got)
	}
}

// Chunk slots are handed out at most once, so the zero-value guarantee
// survives recycling through the pool — including chunks left over from
// a deleted region.
func TestChunkedAllocZeroValue(t *testing.T) {
	a := NewArena()
	r1 := a.NewRegion()
	for i := 0; i < 300; i++ {
		o := Alloc[cachePayload](r1)
		if o.Value != (cachePayload{}) {
			t.Fatalf("alloc %d in r1: non-zero value %+v", i, o.Value)
		}
		o.Value = cachePayload{1, 2, 3}
	}
	if err := r1.Delete(); err != nil {
		t.Fatal(err)
	}
	r2 := a.NewRegion()
	for i := 0; i < 300; i++ {
		o := Alloc[cachePayload](r2)
		if o.Value != (cachePayload{}) {
			t.Fatalf("alloc %d in r2: non-zero value %+v (recycled chunk slot)", i, o.Value)
		}
	}
	if err := r2.Delete(); err != nil {
		t.Fatal(err)
	}
}

// Oversized types bypass the chunk pool but use the same delta-batched
// admission, keeping accounting uniform.
func TestAllocOversizedBypassesChunks(t *testing.T) {
	type big struct{ x [2048]byte }
	a := NewArena()
	r := a.NewRegion()
	for i := 0; i < 5; i++ {
		if _, err := TryAlloc[big](r); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Objects(); got != 5 {
		t.Fatalf("Objects() = %d, want 5", got)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
}
